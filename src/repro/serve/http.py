"""The HTTP face of the serving stack.

:class:`ServeApp` glues the pieces together — registry, one micro-batch
lane per resident model, optional chaos engine, shared metrics — and
:class:`ReproServer` exposes it over a ``ThreadingHTTPServer``:

- ``POST /predict``  — ``{"model": name?, "inputs": [[...], ...]}`` →
  ``{"model", "predictions", ...}``; inputs are model-ready (normalised)
  arrays, one sample of shape (3, H, W) or a batch of them.
- ``GET /models``    — registered checkpoints with metadata.
- ``GET /healthz``   — liveness plus resident-model summary.
- ``GET /metrics``   — :class:`repro.serve.metrics.ServerMetrics` snapshot
  (JSON); ``GET /metrics?format=prometheus`` serves the same counters in
  the Prometheus text exposition format for scrape-based collectors.

Transport is stdlib-only JSON over HTTP; concurrency comes from the
threading server (one thread per connection) feeding the batcher queues.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.obs.trace import span
from repro.serve.batcher import MicroBatcher
from repro.serve.chaos import ChaosConfig, ChaosEngine
from repro.serve.metrics import ServerMetrics
from repro.serve.registry import ModelRegistry, ServedModel
from repro.utils.logging import get_logger

__all__ = ["ReproServer", "ServeApp", "ServeConfig"]

_logger = get_logger("serve.http")


@dataclass(frozen=True)
class ServeConfig:
    """Server-wide serving knobs (see ``repro serve --help``)."""

    max_batch: int = 32
    max_latency_ms: float = 5.0
    batch_workers: int = 1
    request_timeout: float = 60.0
    chaos: ChaosConfig | None = None


class _Lane:
    """One model's serving lane: entry + batcher (+ chaos engine)."""

    def __init__(
        self, entry: ServedModel, config: ServeConfig, metrics: ServerMetrics
    ) -> None:
        self.entry = entry
        self.chaos = (
            ChaosEngine(entry, config.chaos) if config.chaos is not None else None
        )

        def run_batch(stacked: np.ndarray) -> np.ndarray:
            # entry.forward routes through the compiled runtime plan
            # when the registry was built with runtime=True, else the
            # module path; both run under the thread-local eval
            # override, so shared training-flag state is never touched.
            with span("serve.batch", model=entry.name, size=len(stacked)):
                with entry.infer_lock:
                    if self.chaos is None:
                        return entry.forward(stacked)
                    outputs, report = self.chaos.run_batch(
                        entry.forward, stacked
                    )
            metrics.observe_chaos(entry.name, report)
            return outputs

        self.batcher = MicroBatcher(
            run_batch,
            max_batch=config.max_batch,
            max_latency=config.max_latency_ms / 1000.0,
            workers=config.batch_workers,
            on_batch=lambda size, _seconds: metrics.observe_batch(size),
        )


class ServeApp:
    """Transport-independent serving logic (the HTTP layer is a shim).

    Tests and benchmarks drive :meth:`predict` directly; the handler
    only parses JSON and maps exceptions to status codes.
    """

    def __init__(self, registry: ModelRegistry, config: ServeConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.metrics = ServerMetrics()
        self.started_at = time.monotonic()
        self._lanes: dict[str, _Lane] = {}
        self._lanes_lock = threading.Lock()
        self._lane_builds: dict[str, threading.Lock] = {}
        self._preloaded: list[str] = []

    def __getstate__(self) -> dict[str, object]:
        """Apps hold locks and live batcher lanes; refuse to pickle (RPL007)."""
        raise TypeError(
            "ServeApp holds locks and live batcher lanes and cannot be "
            "pickled; build a fresh app per process"
        )

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def _prune_stale_lanes(self, current: str) -> None:
        """Retire lanes whose models the registry has evicted.

        The residency snapshot is taken under ``_lanes_lock`` so a lane
        created for a concurrently loaded model can't be mistaken for
        stale; batchers are closed outside the lock because close()
        joins worker threads (possibly mid-forward-pass) and must not
        stall other models' predicts.
        """
        stale: list[_Lane] = []
        with self._lanes_lock:
            resident = set(self.registry.resident_names())
            for name in list(self._lanes):
                if name != current and name not in resident:
                    stale.append(self._lanes.pop(name))
        for lane in stale:
            lane.batcher.close()

    def _lane(self, entry: ServedModel) -> _Lane:
        self._prune_stale_lanes(entry.name)
        with self._lanes_lock:
            lane = self._lanes.get(entry.name)
            if lane is not None and lane.entry is entry:
                return lane
            build_lock = self._lane_builds.setdefault(
                entry.name, threading.Lock()
            )
        # Single-flight lane construction per name, outside _lanes_lock:
        # building a lane can be slow (chaos mode quantises the model
        # and snapshots its fault space) and must not block predicts on
        # other, already-warm models.
        with build_lock:
            with self._lanes_lock:
                lane = self._lanes.get(entry.name)
                if lane is not None and lane.entry is entry:
                    return lane
                old = self._lanes.pop(entry.name, None)
            if old is not None:
                # The registry evicted and reloaded this name; retire
                # the stale lane (in-flight batches still complete).
                old.batcher.close()
            lane = _Lane(entry, self.config, self.metrics)
            with self._lanes_lock:
                self._lanes[entry.name] = lane
            return lane

    def preload(self) -> list[str]:
        """Warm every registered model before serving the first request.

        Loads checkpoints, compiles their runtime plans (when the
        registry runs with ``runtime=True``), and builds serving lanes
        — the work that otherwise happens inside the first unlucky
        request.  Fleets larger than the registry capacity are warmed in
        a capacity-aware rotation rather than silently skipped: every
        checkpoint is loaded, compiled and laned once (so a missing or
        corrupt file fails at startup, not mid-traffic, and its manifest
        metadata is cached for ``GET /models``), with LRU eviction
        retiring the earliest entries as the rotation proceeds — the
        last ``capacity`` models stay resident.  Returns all warmed
        names; ``GET /healthz`` reports them as ``preloaded`` and the
        since-evicted subset as ``preload_rotated``.
        """
        warmed: list[str] = []
        for name in self.registry.names():
            entry = self.registry.get(name)
            self._lane(entry)
            warmed.append(name)
            _logger.info("preloaded %s from %s", name, entry.path)
        rotated = [
            name for name in warmed if name not in self.registry.resident_names()
        ]
        if rotated:
            _logger.info(
                "preload rotated %d model(s) beyond registry capacity "
                "(%d): %s — warmed and validated, no longer resident",
                len(rotated),
                self.registry.capacity,
                ", ".join(rotated),
            )
        self._preloaded = warmed
        return list(warmed)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def resolve_model_name(self, name: str | None) -> str:
        if name is not None:
            return str(name)
        names = self.registry.names()
        if len(names) == 1:
            return names[0]
        raise ConfigurationError(
            "request names no model and the server hosts "
            f"{len(names)}; pass \"model\" (one of: {', '.join(names)})"
        )

    def predict(
        self,
        inputs: np.ndarray,
        model: str | None = None,
        return_logits: bool = False,
    ) -> dict[str, object]:
        """Run ``inputs`` through the (micro-batched) model."""
        name = self.resolve_model_name(model)
        entry = self.registry.get(name)
        array = np.asarray(inputs, dtype=np.float32)
        if array.shape == entry.input_shape:
            array = array[np.newaxis]
        if array.ndim != 4 or array.shape[1:] != entry.input_shape:
            raise ConfigurationError(
                f"inputs must be one sample or a batch of shape "
                f"{entry.input_shape}, got array of shape {array.shape}"
            )
        try:
            logits = self._lane(entry).batcher.predict(
                array, timeout=self.config.request_timeout
            )
        except ConfigurationError as error:
            # Capacity-thrash window: the lane can be retired between
            # our registry.get and the submit if another thread evicted
            # this model.  One reload-and-retry keeps the request valid.
            if "closed" not in str(error):
                raise
            entry = self.registry.get(name)
            logits = self._lane(entry).batcher.predict(
                array, timeout=self.config.request_timeout
            )
        response: dict[str, object] = {
            "model": name,
            "predictions": [int(p) for p in logits.argmax(axis=1)],
        }
        if return_logits:
            response["logits"] = [
                [float(v) for v in row] for row in np.asarray(logits)
            ]
        return response

    def describe_models(self) -> dict[str, object]:
        # Read-only view: must not touch LRU order or trigger model
        # loads (non-resident entries are described from a cheap
        # manifest peek).
        resident = {
            entry.name: entry for entry in self.registry.resident_entries()
        }
        models = []
        for name in self.registry.names():
            entry = resident.get(name)
            if entry is not None:
                models.append({**entry.describe(), "resident": True})
            else:
                models.append(
                    {**self.registry.describe_spec(name), "resident": False}
                )
        return {
            "models": models,
            "capacity": self.registry.capacity,
            "loads": self.registry.loads,
            "evictions": self.registry.evictions,
            "chaos": self.config.chaos is not None,
        }

    def health(self) -> dict[str, object]:
        resident = set(self.registry.resident_names())
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "models": self.registry.names(),
            "resident": self.registry.resident_names(),
            "preloaded": list(self._preloaded),
            # Warmed at startup but since rotated out by LRU pressure
            # (fleet larger than capacity): validated, reloadable on
            # first request, just not resident right now.
            "preload_rotated": [
                name for name in self._preloaded if name not in resident
            ],
            "chaos_ber": self.config.chaos.ber if self.config.chaos else None,
            "runtime": self.registry.runtime,
        }

    def close(self) -> None:
        """Retire every lane (drains queued batches)."""
        with self._lanes_lock:
            lanes, self._lanes = list(self._lanes.values()), {}
        for lane in lanes:
            lane.batcher.close()


class _Handler(BaseHTTPRequestHandler):
    """JSON shim: route, parse, call the app, map errors to statuses."""

    server: "_HTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode("utf-8"), "application/json"
        )

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, endpoint: str, handler) -> None:
        app = self.server.app
        started = time.monotonic()
        with span("serve.request", endpoint=endpoint):
            try:
                status, payload = handler(app)
            except ConfigurationError as error:
                status = 404 if "unknown model" in str(error) else 400
                payload = {"error": str(error)}
            except ReproError as error:
                status, payload = 400, {"error": str(error)}
            except (ValueError, TypeError, KeyError) as error:
                status, payload = 400, {"error": f"bad request: {error}"}
            except Exception as error:  # noqa: BLE001 — last-resort 500
                _logger.exception("unhandled error serving %s", endpoint)
                status, payload = 500, {"error": f"internal error: {error}"}
        app.metrics.observe_request(endpoint, status, time.monotonic() - started)
        if isinstance(payload, str):
            # Text endpoints (the Prometheus exposition) skip the JSON
            # envelope; errors fall through above as JSON dicts.
            self._send_bytes(
                status,
                payload.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json(status, payload)

    def _read_body(self) -> dict[str, object]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ConfigurationError("request body must be a JSON object")
        raw = self.rfile.read(length)
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ConfigurationError("request body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            self._dispatch(path, lambda app: (200, app.health()))
        elif path == "/models":
            self._dispatch(path, lambda app: (200, app.describe_models()))
        elif path == "/metrics":
            params = parse_qs(query)
            if params.get("format", ["json"])[-1] == "prometheus":
                self._dispatch(
                    path, lambda app: (200, app.metrics.render_prometheus())
                )
            else:
                self._dispatch(path, lambda app: (200, app.metrics.snapshot()))
        else:
            self._dispatch(path, lambda app: (404, {"error": f"no route {path}"}))

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/predict":
            self._dispatch(path, lambda app: (404, {"error": f"no route {path}"}))
            return

        def run(app: ServeApp) -> tuple[int, dict[str, object]]:
            body = self._read_body()
            inputs = body.get("inputs")
            if inputs is None:
                raise ConfigurationError('request is missing "inputs"')
            return 200, app.predict(
                np.asarray(inputs, dtype=np.float32),
                model=body.get("model"),
                return_logits=bool(body.get("return_logits", False)),
            )

        self._dispatch(path, run)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        _logger.debug("%s - %s", self.address_string(), format % args)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: ServeApp


class ReproServer:
    """Own the listening socket and background accept thread.

    ``port=0`` binds an ephemeral port; read the resolved one from
    :attr:`port` / :attr:`url`.  ``stop()`` is graceful: it stops
    accepting, finishes in-flight requests, and drains the batchers.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = app
        self._thread: threading.Thread | None = None

    def __getstate__(self) -> dict[str, object]:
        """Servers own a socket and accept thread; refuse to pickle (RPL007)."""
        raise TypeError(
            "ReproServer owns a listening socket and accept thread and "
            "cannot be pickled; start a fresh server per process"
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        if self._thread is not None:
            raise ConfigurationError("server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        _logger.info("serving on %s", self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=10.0)
        self._thread = None
        self._httpd.server_close()
        self.app.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
