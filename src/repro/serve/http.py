"""The serving application and its threaded HTTP front.

:class:`ServeApp` glues the production serving tier together — registry,
admission control, micro-batch lanes (in-process threads or
:class:`~repro.serve.workers.WorkerPool` processes), optional chaos
engine, latency-SLO tracking, shared metrics — behind the versioned
``/v1`` API (see :mod:`repro.serve.protocol`):

- ``POST /v1/predict``  — typed predict (admitted, micro-batched).
- ``GET  /v1/models``   — registered checkpoints with metadata.
- ``GET  /v1/healthz``  — liveness + admission/worker/SLO reports.
- ``GET  /v1/metrics``  — metrics snapshot (JSON or
  ``?format=prometheus`` text exposition).

The PR-2 unversioned paths still work as deprecated aliases (same
bytes, plus a ``Deprecation`` header).  All routing, error mapping and
per-request observability live in :class:`repro.serve.routes.Router`,
shared with the asyncio front (:mod:`repro.serve.aio`);
:class:`ReproServer` here is the classic thread-per-connection
transport.

Overload does not queue unboundedly: :class:`~repro.serve.admission`
bounds pending requests globally and per model, and sheds the excess as
HTTP 429 with ``Retry-After``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.trace import span
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.chaos import ChaosConfig, ChaosEngine
from repro.serve.metrics import LATENCY_BUCKETS_MS, ServerMetrics
from repro.serve.protocol import PredictResponse
from repro.serve.registry import ModelRegistry, ServedModel
from repro.serve.routes import RouteResult, Router
from repro.serve.slo import SloTracker
from repro.serve.workers import WorkerPool
from repro.utils.logging import get_logger

__all__ = ["ReproServer", "ServeApp", "ServeConfig"]

_logger = get_logger("serve.http")


@dataclass(frozen=True)
class ServeConfig:
    """Server-wide serving knobs (see ``repro serve --help``).

    ``workers=0`` serves in-process (threaded lanes); ``workers >= 1``
    fans micro-batches out to that many worker processes, each holding
    its own compiled plans (``mp_start`` picks the start method).
    ``max_pending``/``model_pending`` bound the admission queue;
    ``slo_p99_ms`` arms the latency-SLO tracker surfaced in
    ``/v1/healthz``.
    """

    max_batch: int = 32
    max_latency_ms: float = 5.0
    batch_workers: int = 1
    request_timeout: float = 60.0
    chaos: ChaosConfig | None = None
    max_pending: int = 256
    model_pending: int | None = None
    workers: int = 0
    mp_start: str = "spawn"
    slo_p99_ms: float | None = None
    drain_timeout_s: float = 10.0


class _Lane:
    """One model's in-process serving lane: entry + batcher (+ chaos)."""

    def __init__(
        self, entry: ServedModel, config: ServeConfig, metrics: ServerMetrics
    ) -> None:
        self.entry = entry
        self.chaos = (
            ChaosEngine(entry, config.chaos) if config.chaos is not None else None
        )

        def run_batch(stacked: np.ndarray) -> np.ndarray:
            # entry.forward routes through the compiled runtime plan
            # when the registry was built with runtime=True, else the
            # module path; both run under the thread-local eval
            # override, so shared training-flag state is never touched.
            with span("serve.batch", model=entry.name, size=len(stacked)):
                with entry.infer_lock:
                    if self.chaos is None:
                        return entry.forward(stacked)
                    outputs, report = self.chaos.run_batch(
                        entry.forward, stacked
                    )
            metrics.observe_chaos(entry.name, report)
            return outputs

        self.batcher = MicroBatcher(
            run_batch,
            max_batch=config.max_batch,
            max_latency=config.max_latency_ms / 1000.0,
            workers=config.batch_workers,
            on_batch=lambda size, _seconds: metrics.observe_batch(size),
        )


class _ProcessLane:
    """One model's multi-process lane: batcher fanning out to the pool.

    The parent holds no model — the batcher's ``run_batch`` ships the
    coalesced array to an idle worker process, which loads/compiles the
    checkpoint on first sight and runs chaos (if configured) inside its
    own address space with exact flip/restore semantics.  ``workers``
    batcher threads keep up to ``workers`` batches in flight, one per
    worker process.
    """

    def __init__(
        self,
        name: str,
        path: str,
        pool: WorkerPool,
        config: ServeConfig,
        metrics: ServerMetrics,
    ) -> None:
        self.name = name

        def run_batch(stacked: np.ndarray) -> np.ndarray:
            with span("serve.batch", model=name, size=len(stacked)):
                outputs, report = pool.run_batch(name, path, stacked)
            if report is not None:
                metrics.observe_chaos(name, report)
            return outputs

        self.batcher = MicroBatcher(
            run_batch,
            max_batch=config.max_batch,
            max_latency=config.max_latency_ms / 1000.0,
            workers=pool.workers,
            on_batch=lambda size, _seconds: metrics.observe_batch(size),
        )


class ServeApp:
    """Transport-independent serving logic (the HTTP fronts are shims).

    Tests and benchmarks drive :meth:`predict` (blocking) or
    :meth:`submit_predict` (future-returning, what the asyncio front
    awaits) directly; the transports parse bytes and write
    :class:`~repro.serve.routes.RouteResult`\\ s.
    """

    def __init__(self, registry: ModelRegistry, config: ServeConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        if self.config.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.config.workers}"
            )
        self.metrics = ServerMetrics()
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            model_pending=self.config.model_pending,
            on_shed=self.metrics.observe_shed,
            on_depth=self.metrics.observe_queue_depth,
        )
        self.slo = (
            SloTracker(self.config.slo_p99_ms, LATENCY_BUCKETS_MS)
            if self.config.slo_p99_ms is not None
            else None
        )
        self.router = Router(self)
        self.started_at = time.monotonic()  # repro-lint: disable=RPL009 — uptime epoch read once at construction
        self._lanes: dict[str, _Lane] = {}
        self._process_lanes: dict[str, _ProcessLane] = {}
        self._lanes_lock = threading.Lock()
        self._lane_builds: dict[str, threading.Lock] = {}
        self._preloaded: list[str] = []
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()

    def __getstate__(self) -> dict[str, object]:
        """Apps hold locks and live batcher lanes; refuse to pickle (RPL007)."""
        raise TypeError(
            "ServeApp holds locks and live batcher lanes and cannot be "
            "pickled; build a fresh app per process"
        )

    @property
    def process_mode(self) -> bool:
        return self.config.workers > 0

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def _pool_handle(self) -> WorkerPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    workers=self.config.workers,
                    mp_start=self.config.mp_start,
                    runtime_config=self.registry.config,
                    chaos=self.config.chaos,
                    registry_capacity=self.registry.capacity,
                    request_timeout=self.config.request_timeout,
                    on_restart=self.metrics.observe_worker_restart,
                )
            return self._pool

    def _prune_stale_lanes(self, current: str) -> None:
        """Retire lanes whose models the registry has evicted.

        The residency snapshot is taken under ``_lanes_lock`` so a lane
        created for a concurrently loaded model can't be mistaken for
        stale; batchers are closed outside the lock because close()
        joins worker threads (possibly mid-forward-pass) and must not
        stall other models' predicts.
        """
        stale: list[_Lane] = []
        with self._lanes_lock:
            resident = set(self.registry.resident_names())
            for name in list(self._lanes):
                if name != current and name not in resident:
                    stale.append(self._lanes.pop(name))
        for lane in stale:
            lane.batcher.close()

    def _lane(self, entry: ServedModel) -> _Lane:
        self._prune_stale_lanes(entry.name)
        with self._lanes_lock:
            lane = self._lanes.get(entry.name)
            if lane is not None and lane.entry is entry:
                return lane
            build_lock = self._lane_builds.setdefault(
                entry.name, threading.Lock()
            )
        # Single-flight lane construction per name, outside _lanes_lock:
        # building a lane can be slow (chaos mode quantises the model
        # and snapshots its fault space) and must not block predicts on
        # other, already-warm models.
        with build_lock:
            with self._lanes_lock:
                lane = self._lanes.get(entry.name)
                if lane is not None and lane.entry is entry:
                    return lane
                old = self._lanes.pop(entry.name, None)
            if old is not None:
                # The registry evicted and reloaded this name; retire
                # the stale lane (in-flight batches still complete).
                old.batcher.close()
            lane = _Lane(entry, self.config, self.metrics)
            with self._lanes_lock:
                self._lanes[entry.name] = lane
            return lane

    def _process_lane(self, name: str) -> _ProcessLane:
        with self._lanes_lock:
            lane = self._process_lanes.get(name)
            if lane is not None:
                return lane
            build_lock = self._lane_builds.setdefault(name, threading.Lock())
        with build_lock:
            with self._lanes_lock:
                lane = self._process_lanes.get(name)
                if lane is not None:
                    return lane
            spec = self.registry.spec(name)
            lane = _ProcessLane(
                name, spec.path, self._pool_handle(), self.config, self.metrics
            )
            with self._lanes_lock:
                self._process_lanes[name] = lane
            return lane

    def preload(self) -> list[str]:
        """Warm every registered model before serving the first request.

        In-process mode loads checkpoints, compiles their runtime plans
        (when the registry runs with ``runtime=True``), and builds
        serving lanes — the work that otherwise happens inside the first
        unlucky request.  Fleets larger than the registry capacity are
        warmed in a capacity-aware rotation rather than silently
        skipped: every checkpoint is loaded, compiled and laned once (so
        a missing or corrupt file fails at startup, not mid-traffic, and
        its manifest metadata is cached for ``GET /v1/models``), with
        LRU eviction retiring the earliest entries as the rotation
        proceeds — the last ``capacity`` models stay resident.

        In process mode the parent loads nothing; instead every worker
        lane is told to load and compile each checkpoint, so the fleet
        starts hot.  Returns all warmed names; ``GET /v1/healthz``
        reports them as ``preloaded`` and the since-evicted subset as
        ``preload_rotated``.
        """
        warmed: list[str] = []
        if self.process_mode:
            pool = self._pool_handle()
            for name in self.registry.names():
                spec = self.registry.spec(name)
                pool.warm(name, spec.path)
                self._process_lane(name)
                warmed.append(name)
                _logger.info(
                    "preloaded %s on %d worker lane(s) from %s",
                    name,
                    pool.workers,
                    spec.path,
                )
            self._preloaded = warmed
            return list(warmed)
        for name in self.registry.names():
            entry = self.registry.get(name)
            self._lane(entry)
            warmed.append(name)
            _logger.info("preloaded %s from %s", name, entry.path)
        rotated = [
            name for name in warmed if name not in self.registry.resident_names()
        ]
        if rotated:
            _logger.info(
                "preload rotated %d model(s) beyond registry capacity "
                "(%d): %s — warmed and validated, no longer resident",
                len(rotated),
                self.registry.capacity,
                ", ".join(rotated),
            )
        self._preloaded = warmed
        return list(warmed)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def resolve_model_name(self, name: str | None) -> str:
        if name is not None:
            return str(name)
        names = self.registry.names()
        if len(names) == 1:
            return names[0]
        raise ConfigurationError(
            "request names no model and the server hosts "
            f"{len(names)}; pass \"model\" (one of: {', '.join(names)})"
        )

    def _validate_inputs(
        self, array: np.ndarray, shape: tuple[int, int, int] | None
    ) -> np.ndarray:
        if shape is not None:
            if array.shape == shape:
                array = array[np.newaxis]
            if array.ndim != 4 or array.shape[1:] != shape:
                raise ConfigurationError(
                    f"inputs must be one sample or a batch of shape "
                    f"{shape}, got array of shape {array.shape}"
                )
            return array
        # No manifest geometry (old checkpoint, process mode): accept
        # any 3-d sample / 4-d batch; the worker's forward rejects
        # mismatches at run time.
        if array.ndim == 3:
            array = array[np.newaxis]
        if array.ndim != 4:
            raise ConfigurationError(
                "inputs must be one (C, H, W) sample or a batch of them, "
                f"got array of shape {array.shape}"
            )
        return array

    def submit_predict(
        self, inputs: np.ndarray, model: str | None = None
    ) -> tuple[str, "Future[np.ndarray]"]:
        """Admit and enqueue one predict; returns ``(name, future)``.

        The future resolves to the logits array for exactly these
        samples.  Raises :class:`repro.errors.ServerOverloadedError`
        when admission sheds the request.  The admission ticket is
        released when the future settles, so pending counts track work
        actually inside the server.
        """
        name = self.resolve_model_name(model)
        array = np.asarray(inputs, dtype=np.float32)
        if self.process_mode:
            shape = self.registry.spec(name).input_shape
        else:
            shape = self.registry.get(name).input_shape
        array = self._validate_inputs(array, shape)
        ticket = self.admission.admit(name)
        try:
            future = self._submit(name, array)
        except BaseException:
            ticket.release()
            raise
        future.add_done_callback(lambda _future: ticket.release())
        return name, future

    def _submit(self, name: str, array: np.ndarray):
        if self.process_mode:
            return self._process_lane(name).batcher.submit(array)
        entry = self.registry.get(name)
        try:
            return self._lane(entry).batcher.submit(array)
        except ConfigurationError as error:
            # Capacity-thrash window: the lane can be retired between
            # our registry.get and the submit if another thread evicted
            # this model.  One reload-and-retry keeps the request valid.
            if "closed" not in str(error):
                raise
            entry = self.registry.get(name)
            return self._lane(entry).batcher.submit(array)

    def predict(
        self,
        inputs: np.ndarray,
        model: str | None = None,
        return_logits: bool = False,
    ) -> dict[str, object]:
        """Blocking predict; returns the ``/v1/predict`` payload dict."""
        name, future = self.submit_predict(inputs, model=model)
        logits = future.result(timeout=self.config.request_timeout)
        return PredictResponse.from_result(
            name, np.asarray(logits), return_logits
        ).to_payload()

    def describe_models(self) -> dict[str, object]:
        # Read-only view: must not touch LRU order or trigger model
        # loads (non-resident entries are described from a cheap
        # manifest peek).
        resident = {
            entry.name: entry for entry in self.registry.resident_entries()
        }
        models = []
        for name in self.registry.names():
            entry = resident.get(name)
            if entry is not None:
                models.append({**entry.describe(), "resident": True})
            else:
                models.append(
                    {**self.registry.describe_spec(name), "resident": False}
                )
        return {
            "models": models,
            "capacity": self.registry.capacity,
            "loads": self.registry.loads,
            "evictions": self.registry.evictions,
            "chaos": self.config.chaos is not None,
        }

    def _workers_report(self) -> dict[str, object]:
        if not self.process_mode:
            return {"mode": "thread", "count": self.config.batch_workers}
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return {
                "mode": "process",
                "count": self.config.workers,
                "mp_start": self.config.mp_start,
                "alive": 0,
                "restarts": 0,
            }
        return pool.report()

    def health(self) -> dict[str, object]:
        resident = set(self.registry.resident_names())
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "models": self.registry.names(),
            "resident": self.registry.resident_names(),
            "preloaded": list(self._preloaded),
            # Warmed at startup but since rotated out by LRU pressure
            # (fleet larger than capacity): validated, reloadable on
            # first request, just not resident right now.  In process
            # mode residency lives in the workers (the parent registry
            # is empty by design), so nothing is ever "rotated" here.
            "preload_rotated": []
            if self.process_mode
            else [name for name in self._preloaded if name not in resident],
            "chaos_ber": self.config.chaos.ber if self.config.chaos else None,
            "runtime": self.registry.runtime,
            "admission": self.admission.report(),
            "workers": self._workers_report(),
            "slo": self.slo.report() if self.slo is not None else None,
        }

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Per-request observability feed (called by the router)."""
        self.metrics.observe_request(endpoint, status, seconds)
        if self.slo is not None and endpoint == "/v1/predict":
            self.slo.observe(seconds * 1000.0)

    def close(self) -> None:
        """Drain and retire every lane, then the worker pool.

        Ordering matters for the SIGTERM drain: batchers close first
        (each finishes its queued batches — the FIFO drain the batcher
        guarantees), and only then is the pool drained and shut down, so
        no in-flight batch loses its worker.
        """
        with self._lanes_lock:
            lanes: list[_Lane | _ProcessLane] = list(self._lanes.values())
            lanes.extend(self._process_lanes.values())
            self._lanes = {}
            self._process_lanes = {}
        for lane in lanes:
            lane.batcher.close(timeout=self.config.drain_timeout_s)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close(drain=True, timeout=self.config.drain_timeout_s)


class _Handler(BaseHTTPRequestHandler):
    """Byte shim: read the request, let the router do everything else."""

    server: "_HTTPServer"
    protocol_version = "HTTP/1.1"

    def _send(self, result: RouteResult) -> None:
        self.send_response(result.status)
        self.send_header("Content-Type", result.content_type)
        self.send_header("Content-Length", str(len(result.body)))
        for name, value in result.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(result.body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._send(self.server.app.router.handle("GET", self.path, None))

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length) if length > 0 else b""
        self._send(self.server.app.router.handle("POST", self.path, body))

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        _logger.debug("%s - %s", self.address_string(), format % args)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: ServeApp


class ReproServer:
    """Own the listening socket and background accept thread.

    ``port=0`` binds an ephemeral port; read the resolved one from
    :attr:`port` / :attr:`url`.  ``stop()`` is graceful: it stops
    accepting, finishes in-flight requests, and drains the batchers
    (and, in process mode, the worker pool).
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = app
        self._thread: threading.Thread | None = None

    def __getstate__(self) -> dict[str, object]:
        """Servers own a socket and accept thread; refuse to pickle (RPL007)."""
        raise TypeError(
            "ReproServer owns a listening socket and accept thread and "
            "cannot be pickled; start a fresh server per process"
        )

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        if self._thread is not None:
            raise ConfigurationError("server is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        _logger.info("serving on %s", self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=10.0)
        self._thread = None
        self._httpd.server_close()
        self.app.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
