"""Thread-safe serving metrics, built on the ``repro.obs`` registry.

One :class:`ServerMetrics` instance aggregates everything ``GET
/metrics`` reports: per-endpoint request counts and status codes, a
log-scale request-latency histogram, the batch-size distribution the
micro-batcher actually achieved, and — when chaos mode is on — per-model
fault-injection counters (batches injected, bits flipped, SDC events).

The state lives in a private :class:`~repro.obs.MetricsRegistry`
(private so concurrent apps in one process never share counts): every
observer takes the registry lock per observation, snapshots are built
from copies, and the same families render the Prometheus text
exposition behind ``GET /metrics?format=prometheus``.  The JSON
:meth:`ServerMetrics.snapshot` shape is a stable contract — dashboards
and the serve tests consume it — and is reconstructed from the registry
series byte-for-byte as before the registry refactor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.metrics import Histogram, MetricsRegistry, bucket_label

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "ChaosBatchReport",
    "LATENCY_BUCKETS_MS",
    "Histogram",
    "ServerMetrics",
]

LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    math.inf,
)
"""Upper bounds (ms) of the request-latency histogram buckets."""

BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, math.inf)
"""Upper bounds of the batch-size distribution buckets."""

#: Back-compat alias (the label helper moved to ``repro.obs.metrics``).
_bucket_label = bucket_label

#: The per-model chaos counters, in their (stable) snapshot order.
_CHAOS_FIELDS = (
    "batches",
    "injected_batches",
    "flips",
    "samples",
    "sdc_events",
)


@dataclass(frozen=True)
class ChaosBatchReport:
    """What one chaos-mode batch did to the live model.

    ``sdc_events`` counts predictions that changed relative to the
    fault-free forward pass of the same inputs — the serving analogue of
    the campaign engine's silent-data-corruption trials.
    """

    samples: int
    flips: int
    injected: bool
    sdc_events: int


class ServerMetrics:
    """Aggregated observability state behind ``GET /metrics``."""

    def __init__(self) -> None:
        registry = MetricsRegistry()
        self.registry = registry
        self._requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labelnames=("endpoint", "status"),
        )
        self._latency = registry.histogram(
            "repro_http_request_latency_ms",
            "End-to-end request handling latency (milliseconds).",
            buckets=LATENCY_BUCKETS_MS,
        )
        self._serve_latency = registry.histogram(
            "repro_serve_latency_ms",
            "Per-endpoint request handling latency (milliseconds).",
            buckets=LATENCY_BUCKETS_MS,
            labelnames=("endpoint",),
        )
        self._shed = registry.counter(
            "repro_serve_shed_total",
            "Requests shed by admission control, by model and reason.",
            labelnames=("model", "reason"),
        )
        self._queue_depth = registry.gauge(
            "repro_serve_queue_depth",
            "Requests currently pending per model (admission view).",
            labelnames=("model",),
        )
        self._worker_restarts = registry.counter(
            "repro_serve_worker_restarts_total",
            "Worker-lane processes restarted after dying mid-service.",
        )
        self._batch_sizes = registry.histogram(
            "repro_serve_batch_size",
            "Coalesced micro-batch sizes the batcher actually executed.",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._samples = registry.counter(
            "repro_serve_samples_total",
            "Samples served through executed micro-batches.",
        )
        self._chaos = {
            field: registry.counter(
                f"repro_serve_chaos_{field}_total",
                f"Chaos-mode {field.replace('_', ' ')}, per model.",
                labelnames=("model",),
            )
            for field in _CHAOS_FIELDS
        }

    def __getstate__(self) -> dict[str, object]:
        """Metrics hold a lock; refuse to pickle (RPL007)."""
        raise TypeError(
            "ServerMetrics holds a lock and cannot be pickled; export "
            "snapshot() instead"
        )

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        self._requests.inc(endpoint=endpoint, status=int(status))
        self._latency.observe(seconds * 1000.0)
        self._serve_latency.observe(seconds * 1000.0, endpoint=endpoint)

    def observe_shed(self, model: str, reason: str) -> None:
        self._shed.inc(model=model, reason=reason)

    def observe_queue_depth(self, model: str, depth: int) -> None:
        self._queue_depth.set(int(depth), model=model)

    def observe_worker_restart(self) -> None:
        self._worker_restarts.inc()

    def latency_quantile(self, q: float, endpoint: str) -> float:
        """Bucket-interpolated latency quantile for one endpoint (ms)."""
        return self._serve_latency.quantile(q, endpoint=endpoint)

    def observe_batch(self, size: int) -> None:
        self._batch_sizes.observe(size)
        self._samples.inc(int(size))

    def observe_chaos(self, model: str, report: ChaosBatchReport) -> None:
        self._chaos["batches"].inc(1, model=model)
        self._chaos["injected_batches"].inc(int(report.injected), model=model)
        self._chaos["flips"].inc(int(report.flips), model=model)
        self._chaos["samples"].inc(int(report.samples), model=model)
        self._chaos["sdc_events"].inc(int(report.sdc_events), model=model)

    def _chaos_counts(self, model: str) -> dict[str, int]:
        return {
            field: int(self._chaos[field].value(model=model))
            for field in _CHAOS_FIELDS
        }

    @staticmethod
    def _chaos_entry(counts: dict[str, int]) -> dict[str, object]:
        samples = counts["samples"]
        return {
            **counts,
            # Fraction of served predictions silently corrupted by the
            # injected faults — an upper bound on the accuracy drop the
            # traffic experienced (some flipped predictions may have
            # been wrong anyway).
            "sdc_rate": round(counts["sdc_events"] / samples, 6)
            if samples
            else 0.0,
        }

    def chaos_snapshot(self, model: str) -> dict[str, object]:
        """Chaos counters for one model (zeros when never injected)."""
        return self._chaos_entry(self._chaos_counts(model))

    def snapshot(self) -> dict[str, object]:
        by_endpoint: dict[str, dict[int, int]] = {}
        for (endpoint, status), count in self._requests.series().items():
            by_endpoint.setdefault(endpoint, {})[int(status)] = int(count)
        chaos_models = sorted(
            {model for (model,) in self._chaos["batches"].series()}
        )
        return {
            "requests": {
                "total": sum(
                    sum(statuses.values()) for statuses in by_endpoint.values()
                ),
                "errors": sum(
                    count
                    for statuses in by_endpoint.values()
                    for status, count in statuses.items()
                    if status >= 400
                ),
                "by_endpoint": {
                    endpoint: {
                        "count": sum(statuses.values()),
                        "errors": sum(
                            count
                            for status, count in statuses.items()
                            if status >= 400
                        ),
                        "by_status": {
                            str(status): count
                            for status, count in sorted(statuses.items())
                        },
                    }
                    for endpoint, statuses in sorted(by_endpoint.items())
                },
            },
            "latency_ms": self._latency.snapshot_series(),
            "batches": {
                "samples_served": int(self._samples.value()),
                "sizes": self._batch_sizes.snapshot_series(),
            },
            "chaos": {
                model: self._chaos_entry(self._chaos_counts(model))
                for model in chaos_models
            },
            "admission": {
                "shed": self._shed_snapshot(),
                "worker_restarts": int(self._worker_restarts.value()),
            },
        }

    def _shed_snapshot(self) -> dict[str, dict[str, int]]:
        out: dict[str, dict[str, int]] = {}
        for (model, reason), count in sorted(self._shed.series().items()):
            out.setdefault(model, {})[reason] = int(count)
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every serving metric."""
        return self.registry.render_prometheus()
