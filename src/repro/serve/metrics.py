"""Thread-safe serving metrics.

One :class:`ServerMetrics` instance aggregates everything ``GET
/metrics`` reports: per-endpoint request counts and status codes, a
log-scale request-latency histogram, the batch-size distribution the
micro-batcher actually achieved, and — when chaos mode is on — per-model
fault-injection counters (batches injected, bits flipped, SDC events).

All observers take one lock per observation; snapshots are deep copies,
so handlers can serialise them without racing the hot path.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "ChaosBatchReport",
    "LATENCY_BUCKETS_MS",
    "Histogram",
    "ServerMetrics",
]

LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
    math.inf,
)
"""Upper bounds (ms) of the request-latency histogram buckets."""

BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, math.inf)
"""Upper bounds of the batch-size distribution buckets."""


def _bucket_label(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return f"{bound:g}"


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    Observations are binned internally, and :meth:`snapshot` emits
    *cumulative* bucket counts — ``le_X`` counts every observation
    ``<= X``, as ``histogram_quantile``-style consumers expect.  Not
    thread-safe on its own; :class:`ServerMetrics` serialises access.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break

    def snapshot(self) -> dict[str, object]:
        buckets = {}
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            buckets[f"le_{_bucket_label(bound)}"] = cumulative
        return {
            "count": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.sum / self.total, 6) if self.total else 0.0,
            "buckets": buckets,
        }


@dataclass(frozen=True)
class ChaosBatchReport:
    """What one chaos-mode batch did to the live model.

    ``sdc_events`` counts predictions that changed relative to the
    fault-free forward pass of the same inputs — the serving analogue of
    the campaign engine's silent-data-corruption trials.
    """

    samples: int
    flips: int
    injected: bool
    sdc_events: int


@dataclass
class _ChaosCounters:
    batches: int = 0
    injected_batches: int = 0
    flips: int = 0
    samples: int = 0
    sdc_events: int = 0

    def add(self, report: ChaosBatchReport) -> None:
        self.batches += 1
        self.injected_batches += int(report.injected)
        self.flips += report.flips
        self.samples += report.samples
        self.sdc_events += report.sdc_events

    def snapshot(self) -> dict[str, object]:
        return {
            "batches": self.batches,
            "injected_batches": self.injected_batches,
            "flips": self.flips,
            "samples": self.samples,
            "sdc_events": self.sdc_events,
            # Fraction of served predictions silently corrupted by the
            # injected faults — an upper bound on the accuracy drop the
            # traffic experienced (some flipped predictions may have
            # been wrong anyway).
            "sdc_rate": round(self.sdc_events / self.samples, 6)
            if self.samples
            else 0.0,
        }


@dataclass
class _EndpointCounters:
    count: int = 0
    errors: int = 0
    by_status: dict[int, int] = field(default_factory=dict)


class ServerMetrics:
    """Aggregated observability state behind ``GET /metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointCounters] = {}
        self._latency = Histogram(LATENCY_BUCKETS_MS)
        self._batch_sizes = Histogram(BATCH_SIZE_BUCKETS)
        self._samples_served = 0
        self._chaos: dict[str, _ChaosCounters] = {}

    def __getstate__(self) -> dict[str, object]:
        """Metrics hold a lock; refuse to pickle (RPL007)."""
        raise TypeError(
            "ServerMetrics holds a lock and cannot be pickled; export "
            "snapshot() instead"
        )

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            counters = self._endpoints.setdefault(endpoint, _EndpointCounters())
            counters.count += 1
            counters.by_status[status] = counters.by_status.get(status, 0) + 1
            if status >= 400:
                counters.errors += 1
            self._latency.observe(seconds * 1000.0)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes.observe(size)
            self._samples_served += size

    def observe_chaos(self, model: str, report: ChaosBatchReport) -> None:
        with self._lock:
            self._chaos.setdefault(model, _ChaosCounters()).add(report)

    def chaos_snapshot(self, model: str) -> dict[str, object]:
        """Chaos counters for one model (zeros when never injected)."""
        with self._lock:
            counters = self._chaos.get(model, _ChaosCounters())
            return counters.snapshot()

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "requests": {
                    "total": sum(c.count for c in self._endpoints.values()),
                    "errors": sum(c.errors for c in self._endpoints.values()),
                    "by_endpoint": {
                        endpoint: {
                            "count": counters.count,
                            "errors": counters.errors,
                            "by_status": {
                                str(status): count
                                for status, count in sorted(
                                    counters.by_status.items()
                                )
                            },
                        }
                        for endpoint, counters in sorted(self._endpoints.items())
                    },
                },
                "latency_ms": self._latency.snapshot(),
                "batches": {
                    "samples_served": self._samples_served,
                    "sizes": self._batch_sizes.snapshot(),
                },
                "chaos": {
                    model: counters.snapshot()
                    for model, counters in sorted(self._chaos.items())
                },
            }
