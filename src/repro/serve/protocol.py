"""The versioned serving protocol: typed messages behind ``/v1``.

PR 2's endpoints grew ad-hoc JSON shapes assembled inline in the HTTP
handler; this module is the redesign — every request and response body
is a typed dataclass with an explicit payload mapping, serialised
through the store's exact-float JSON encoder so logits round-trip bit
for bit, and served under versioned paths:

- ``POST /v1/predict``  — :class:`PredictRequest` → :class:`PredictResponse`
- ``GET  /v1/models``   — :class:`ModelList` (of :class:`ModelInfo`)
- ``GET  /v1/healthz``  — :class:`HealthReport`
- ``GET  /v1/metrics``  — metrics snapshot (JSON or Prometheus text)

The PR-2 unversioned paths (``/predict``, ``/models``, ``/healthz``,
``/metrics``) remain as **deprecated aliases**: :data:`LEGACY_ALIASES`
maps each onto its ``/v1`` successor, the response body bytes are
identical by construction (one shared code path in
:mod:`repro.serve.routes`), and alias responses carry ``Deprecation:
true`` plus a ``Link: </v1/...>; rel="successor-version"`` header so
clients can migrate mechanically.

Error bodies are ``{"error": "<message>"}`` everywhere
(:class:`ErrorBody`); overload sheds add ``retry_after_s`` and the
``Retry-After`` header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.store.encoding import exact_json_dumps

__all__ = [
    "API_VERSION",
    "DEPRECATION_HEADERS",
    "ErrorBody",
    "HealthReport",
    "LEGACY_ALIASES",
    "ModelInfo",
    "ModelList",
    "PredictRequest",
    "PredictResponse",
    "dump_payload",
]

API_VERSION = "v1"

#: Deprecated unversioned path → canonical ``/v1`` successor.
LEGACY_ALIASES: dict[str, str] = {
    "/predict": "/v1/predict",
    "/models": "/v1/models",
    "/healthz": "/v1/healthz",
    "/metrics": "/v1/metrics",
}


def DEPRECATION_HEADERS(canonical: str) -> list[tuple[str, str]]:
    """Headers an unversioned alias response carries (RFC 8594 style)."""
    return [
        ("Deprecation", "true"),
        ("Link", f'<{canonical}>; rel="successor-version"'),
    ]


def dump_payload(payload: Mapping[str, Any]) -> bytes:
    """Serialise a protocol payload with exact-float round-tripping.

    Uses the store's encoder contract: shortest-round-trip floats,
    ``allow_nan=False`` (a NaN logit fails loudly at encode time instead
    of emitting invalid JSON), compact separators so identical payloads
    are identical bytes.
    """
    return exact_json_dumps(dict(payload)).encode("utf-8")


def _require(payload: Mapping[str, Any], key: str) -> Any:
    if key not in payload:
        raise ConfigurationError(f'request is missing "{key}"')
    return payload[key]


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictRequest:
    """``POST /v1/predict`` body.

    ``inputs`` is one model-ready sample (``(C, H, W)``) or a batch of
    them; ``model`` may be omitted when the server hosts exactly one.
    """

    inputs: np.ndarray
    model: str | None = None
    return_logits: bool = False

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PredictRequest":
        if not isinstance(payload, Mapping):
            raise ConfigurationError("request body must be a JSON object")
        inputs = _require(payload, "inputs")
        try:
            array = np.asarray(inputs, dtype=np.float32)
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f'"inputs" must be a numeric array: {error}'
            ) from error
        model = payload.get("model")
        return cls(
            inputs=array,
            model=None if model is None else str(model),
            return_logits=bool(payload.get("return_logits", False)),
        )

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"inputs": np.asarray(self.inputs).tolist()}
        if self.model is not None:
            payload["model"] = self.model
        if self.return_logits:
            payload["return_logits"] = True
        return payload


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictResponse:
    """``POST /v1/predict`` response: argmax predictions (+ logits)."""

    model: str
    predictions: tuple[int, ...]
    logits: tuple[tuple[float, ...], ...] | None = None

    @classmethod
    def from_result(
        cls, model: str, logits: np.ndarray, return_logits: bool
    ) -> "PredictResponse":
        array = np.asarray(logits)
        return cls(
            model=model,
            predictions=tuple(int(p) for p in array.argmax(axis=1)),
            logits=tuple(
                tuple(float(v) for v in row) for row in array
            )
            if return_logits
            else None,
        )

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PredictResponse":
        logits = payload.get("logits")
        return cls(
            model=str(_require(payload, "model")),
            predictions=tuple(int(p) for p in _require(payload, "predictions")),
            logits=None
            if logits is None
            else tuple(tuple(float(v) for v in row) for row in logits),
        )

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "model": self.model,
            "predictions": list(self.predictions),
        }
        if self.logits is not None:
            payload["logits"] = [list(row) for row in self.logits]
        return payload


@dataclass(frozen=True)
class ModelInfo:
    """One hosted checkpoint as ``GET /v1/models`` reports it.

    ``format``/``clean_accuracy``/``runtime`` are ``None`` for models
    that are registered but not resident (the server answers from a
    manifest peek without loading them).
    """

    name: str
    path: str
    model: str | None
    dataset: str | None
    method: str | None
    num_classes: int | None
    input_shape: tuple[int, int, int] | None
    clean_accuracy: float | None
    resident: bool
    format: str | None = None
    runtime: bool | None = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ModelInfo":
        shape = payload.get("input_shape")
        return cls(
            name=str(_require(payload, "name")),
            path=str(payload.get("path", "")),
            model=payload.get("model"),
            dataset=payload.get("dataset"),
            method=payload.get("method"),
            num_classes=payload.get("num_classes"),
            input_shape=tuple(int(d) for d in shape) if shape else None,
            clean_accuracy=payload.get("clean_accuracy"),
            resident=bool(payload.get("resident", False)),
            format=payload.get("format"),
            runtime=payload.get("runtime"),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "model": self.model,
            "dataset": self.dataset,
            "method": self.method,
            "num_classes": self.num_classes,
            "input_shape": list(self.input_shape) if self.input_shape else None,
            "clean_accuracy": self.clean_accuracy,
            "resident": self.resident,
            "format": self.format,
            "runtime": self.runtime,
        }


@dataclass(frozen=True)
class ModelList:
    """``GET /v1/models`` response."""

    models: tuple[ModelInfo, ...]
    capacity: int
    loads: int
    evictions: int
    chaos: bool

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ModelList":
        return cls(
            models=tuple(
                ModelInfo.from_payload(entry)
                for entry in _require(payload, "models")
            ),
            capacity=int(payload.get("capacity", 0)),
            loads=int(payload.get("loads", 0)),
            evictions=int(payload.get("evictions", 0)),
            chaos=bool(payload.get("chaos", False)),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "models": [info.to_payload() for info in self.models],
            "capacity": self.capacity,
            "loads": self.loads,
            "evictions": self.evictions,
            "chaos": self.chaos,
        }


@dataclass(frozen=True)
class HealthReport:
    """``GET /v1/healthz`` response.

    Extends the PR-2 liveness shape with the PR-9 production surface:
    admission-queue state, worker-lane state (multi-process mode), and
    the latency-SLO report when the server runs with a p99 target.
    """

    status: str
    uptime_seconds: float
    models: tuple[str, ...]
    resident: tuple[str, ...]
    preloaded: tuple[str, ...]
    preload_rotated: tuple[str, ...]
    chaos_ber: float | None
    runtime: bool
    admission: dict[str, Any] | None = None
    workers: dict[str, Any] | None = None
    slo: dict[str, Any] | None = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "HealthReport":
        return cls(
            status=str(_require(payload, "status")),
            uptime_seconds=float(payload.get("uptime_seconds", 0.0)),
            models=tuple(payload.get("models", ())),
            resident=tuple(payload.get("resident", ())),
            preloaded=tuple(payload.get("preloaded", ())),
            preload_rotated=tuple(payload.get("preload_rotated", ())),
            chaos_ber=payload.get("chaos_ber"),
            runtime=bool(payload.get("runtime", False)),
            admission=payload.get("admission"),
            workers=payload.get("workers"),
            slo=payload.get("slo"),
        )

    def to_payload(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "uptime_seconds": self.uptime_seconds,
            "models": list(self.models),
            "resident": list(self.resident),
            "preloaded": list(self.preloaded),
            "preload_rotated": list(self.preload_rotated),
            "chaos_ber": self.chaos_ber,
            "runtime": self.runtime,
            "admission": self.admission,
            "workers": self.workers,
            "slo": self.slo,
        }


@dataclass(frozen=True)
class ErrorBody:
    """Uniform error body; sheds add the retry hint."""

    error: str
    retry_after_s: float | None = None

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"error": self.error}
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload
