"""Checkpoint registry: on-demand loading with LRU eviction.

The registry maps serving names to ``save_protected`` checkpoint paths
and materialises models lazily on first request.  At most ``capacity``
models stay resident; the least recently used entry is evicted when a
load would exceed it.  Loading the same name concurrently is
single-flighted through a per-name load lock, so a burst of first
requests costs one checkpoint read, not N.

Every resident model carries an ``infer_lock`` — the micro-batcher (and
chaos engine, which mutates parameters in place) hold it around forward
passes, so eviction and reload never interleave with inference on the
same instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.checkpoint import (
    checkpoint_format,
    load_protected_auto,
    model_input_channels,
    read_checkpoint_meta,
)
from repro.errors import ConfigurationError
from repro.eval.evaluator import forward_logits
from repro.nn.module import Module
from repro.quant.fixed_point import FixedPointFormat
from repro.utils.logging import get_logger

if TYPE_CHECKING:
    from repro.runtime import RuntimeConfig

__all__ = ["ModelRegistry", "ModelSpec", "ServedModel"]

_logger = get_logger("serve.registry")


@dataclass(frozen=True)
class ModelSpec:
    """A registered checkpoint without a loaded model behind it.

    The multi-process serving path keeps models (and compiled plans)
    inside worker processes; the parent only needs the name, the path to
    ship to workers, and the input geometry from a manifest peek to
    validate requests.  Specs are picklable by construction — they carry
    no locks, modules, or plans.
    """

    name: str
    path: str
    input_shape: tuple[int, int, int] | None


@dataclass
class ServedModel:
    """One resident model plus everything serving needs alongside it.

    ``plan`` is the checkpoint's compiled inference fast path
    (:class:`repro.runtime.InferencePlan`), present when the registry
    was built with ``runtime=True``; batches forward through it instead
    of the module path.  Chaos-mode bit flips stay visible: the plan
    reads parameters live and refreshes its folded constants whenever
    the fault injector touches the model.
    """

    name: str
    path: str
    model: Module
    meta: dict[str, object]
    fmt: FixedPointFormat
    plan: object | None = None
    infer_lock: threading.RLock = field(default_factory=threading.RLock)

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Expected per-sample (channels, height, width).

        The channel count comes from the checkpoint itself — the
        manifest's ``in_channels`` when recorded, else the loaded
        model's first convolution — so grayscale (or hyperspectral)
        checkpoints serve with their true geometry instead of an
        assumed RGB one.
        """
        size = int(self.meta.get("image_size", 32))
        channels = self.meta.get("in_channels")
        if channels is None and isinstance(self.model, Module):
            channels = model_input_channels(self.model, default=None)
        return (int(channels) if channels else 3, size, size)

    def forward(self, inputs):
        """One inference pass — compiled plan if present, module path else.

        Callers must hold :attr:`infer_lock` (the chaos engine mutates
        parameters around forwards).
        """
        if self.plan is not None:
            return self.plan(inputs)
        return forward_logits(self.model, inputs)

    def describe(self) -> dict[str, object]:
        """JSON-ready summary for ``GET /models``."""
        return {
            "name": self.name,
            "path": self.path,
            "model": self.meta.get("model"),
            "dataset": self.meta.get("dataset"),
            "method": self.meta.get("method"),
            "num_classes": self.meta.get("num_classes"),
            "input_shape": list(self.input_shape),
            "format": str(self.fmt),
            "clean_accuracy": self.meta.get("clean_accuracy"),
            "runtime": self.plan is not None,
        }

    def __getstate__(self) -> dict[str, object]:
        """Served entries hold a lock and a compiled plan (RPL007)."""
        raise TypeError(
            "ServedModel holds an inference lock and a process-local "
            "compiled plan and cannot be pickled; ship the checkpoint "
            "path and reload in the target process"
        )


class ModelRegistry:
    """Name → checkpoint map with lazy loading and LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of models resident at once (>= 1).  Evicted
        entries are simply dropped from the cache; in-flight batches on
        an evicted instance finish normally because they hold their own
        reference.
    runtime:
        Deprecated alias for ``config=RuntimeConfig(enabled=True)``:
        compile every loaded checkpoint into a
        :class:`repro.runtime.InferencePlan` once at load time; lanes
        then serve batches through the compiled fast path (bit-exact
        with the module forward, chaos-compatible).
    config:
        One :class:`repro.runtime.RuntimeConfig` carrying every
        compiled-runtime knob.  Mutually exclusive with ``runtime=``.
    """

    def __init__(
        self,
        capacity: int = 4,
        runtime: bool = False,
        config: "RuntimeConfig | None" = None,
    ) -> None:
        from repro.runtime import resolve_runtime_config

        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.config = resolve_runtime_config(
            config, "ModelRegistry", enabled=runtime
        )
        self.runtime = self.config.enabled
        self._specs: dict[str, str] = {}
        self._spec_meta: dict[str, dict[str, object]] = {}
        self._resident: OrderedDict[str, ServedModel] = OrderedDict()
        self._gate = threading.Lock()
        self._load_locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.loads = 0
        self.evictions = 0

    def __getstate__(self) -> dict[str, object]:
        """Registries hold locks and compiled plans; refuse to pickle (RPL007)."""
        raise TypeError(
            "ModelRegistry holds locks and process-local compiled plans "
            "and cannot be pickled; register the same checkpoint paths "
            "in the target process"
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, path: str) -> None:
        """Map ``name`` to a checkpoint path (does not load it)."""
        if not name:
            raise ConfigurationError("model name must be non-empty")
        with self._gate:
            if name in self._specs:
                raise ConfigurationError(f"model {name!r} is already registered")
            self._specs[name] = path

    def names(self) -> list[str]:
        with self._gate:
            return sorted(self._specs)

    def resident_names(self) -> list[str]:
        with self._gate:
            return list(self._resident)

    def resident_entries(self) -> list[ServedModel]:
        """Resident models without touching LRU order (read-only views)."""
        with self._gate:
            return list(self._resident.values())

    def describe_spec(self, name: str) -> dict[str, object]:
        """Checkpoint metadata for ``name`` without loading the model.

        Peeks at the manifest on first call (cached afterwards), so
        ``GET /models`` can report input geometry for models that are
        registered but not resident — and never perturbs LRU order or
        triggers a full load.
        """
        with self._gate:
            if name not in self._specs:
                raise ConfigurationError(f"unknown model {name!r}")
            path = self._specs[name]
            meta = self._spec_meta.get(name)
        if meta is None:
            try:
                meta = read_checkpoint_meta(path)
            except (OSError, ValueError) as error:
                _logger.warning("cannot read manifest of %s: %s", path, error)
                meta = {}
            with self._gate:
                self._spec_meta[name] = meta
        size = meta.get("image_size")
        # Older checkpoints did not record in_channels; without loading
        # the model the best available answer for them is RGB.
        channels = int(meta.get("in_channels", 3))
        return {
            "name": name,
            "path": path,
            "model": meta.get("model"),
            "dataset": meta.get("dataset"),
            "method": meta.get("method"),
            "num_classes": meta.get("num_classes"),
            "input_shape": [channels, int(size), int(size)] if size else None,
            "clean_accuracy": meta.get("clean_accuracy"),
        }

    def spec(self, name: str) -> ModelSpec:
        """Picklable spec for ``name`` without loading the model.

        The process-lane serving path validates request geometry from
        this (manifest-peeked) view and ships only the checkpoint path
        to worker processes.  ``input_shape`` is ``None`` when the
        manifest records no geometry; workers still reject malformed
        inputs at forward time.
        """
        described = self.describe_spec(name)
        shape = described.get("input_shape")
        return ModelSpec(
            name=name,
            path=str(described["path"]),
            input_shape=tuple(int(dim) for dim in shape) if shape else None,
        )

    def __contains__(self, name: str) -> bool:
        with self._gate:
            return name in self._specs

    def __len__(self) -> int:
        return len(self.names())

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def get(self, name: str) -> ServedModel:
        """Resident entry for ``name``, loading (and evicting) as needed."""
        with self._gate:
            entry = self._resident.get(name)
            if entry is not None:
                self._resident.move_to_end(name)
                self.hits += 1
                return entry
            if name not in self._specs:
                known = ", ".join(sorted(self._specs)) or "none registered"
                raise ConfigurationError(
                    f"unknown model {name!r} (available: {known})"
                )
            path = self._specs[name]
            load_lock = self._load_locks.setdefault(name, threading.Lock())
        # Single-flight the slow checkpoint read outside the gate so
        # other names keep loading/serving concurrently.
        with load_lock:
            with self._gate:
                entry = self._resident.get(name)
                if entry is not None:
                    self._resident.move_to_end(name)
                    self.hits += 1
                    return entry
            entry = self._load(name, path)
            with self._gate:
                self._resident[name] = entry
                self._resident.move_to_end(name)
                self.loads += 1
                while len(self._resident) > self.capacity:
                    self._resident.popitem(last=False)
                    self.evictions += 1
            return entry

    def evict(self, name: str) -> bool:
        """Drop ``name`` from the resident cache (True if it was there)."""
        with self._gate:
            if self._resident.pop(name, None) is None:
                return False
            self.evictions += 1
            return True

    def _load(self, name: str, path: str) -> ServedModel:
        model, meta = load_protected_auto(path)
        fmt = checkpoint_format(
            meta, warn=lambda message: _logger.warning("%s: %s", path, message)
        )
        entry = ServedModel(name=name, path=path, model=model, meta=meta, fmt=fmt)
        if self.runtime:
            from repro.runtime import compile_model

            entry.plan = compile_model(
                model,
                entry.input_shape,
                gemm_workers=self.config.gemm_workers,
                profile=self.config.profile,
            )
            _logger.info(
                "compiled runtime plan for %s (%d kernels)", name, len(entry.plan)
            )
        return entry
