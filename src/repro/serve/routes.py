"""Transport-neutral routing for the ``/v1`` serving API.

Both HTTP fronts — the threaded :class:`~repro.serve.http.ReproServer`
and the asyncio :class:`~repro.serve.aio.AsyncReproServer` — delegate
here, so there is exactly one code path from (method, path, body) to
response bytes.  That is what makes the legacy-alias guarantee hold *by
construction*: ``/predict`` is canonicalised to ``/v1/predict`` before
routing, runs the identical handler, and serialises through the same
exact-float encoder — the body bytes cannot differ, only the
``Deprecation``/``Link`` headers the alias adds.

The router also owns the error→status mapping (including the 429 +
``Retry-After`` shed path) and the per-request observability: one
``serve.request`` span, the per-endpoint latency histogram, and the SLO
tracker feed — all labelled with the *canonical* path, so dashboards see
one series per endpoint regardless of which alias clients still use.

Predicts split into a non-blocking half and a completion half
(:meth:`Router.begin` → :class:`PendingPredict`) so the asyncio front
can await the batcher future without holding a thread; the threaded
front just calls :meth:`Router.handle`, which blocks through both
halves.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs

import numpy as np

from repro.errors import ConfigurationError, ReproError, ServerOverloadedError
from repro.obs.trace import span
from repro.serve.protocol import (
    DEPRECATION_HEADERS,
    LEGACY_ALIASES,
    ErrorBody,
    PredictRequest,
    PredictResponse,
    dump_payload,
)
from repro.utils.logging import get_logger

if TYPE_CHECKING:
    from concurrent.futures import Future

    from repro.serve.http import ServeApp

__all__ = ["PendingPredict", "RouteResult", "Router"]

_logger = get_logger("serve.routes")

JSON_CONTENT = "application/json"
PROMETHEUS_CONTENT = "text/plain; version=0.0.4; charset=utf-8"

_PREDICT = "/v1/predict"
_MODELS = "/v1/models"
_HEALTHZ = "/v1/healthz"
_METRICS = "/v1/metrics"
_CAMPAIGN = "/v1/campaign"


@dataclass(frozen=True)
class RouteResult:
    """One fully rendered response, transport-agnostic."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT
    headers: tuple[tuple[str, str], ...] = ()


class _NoRoute(Exception):
    """Internal: unknown path; maps to the 404 no-route body."""

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self.path = path


@dataclass
class PendingPredict:
    """A predict admitted and queued, awaiting its batcher future.

    The transport resolves :attr:`future` its own way — blocking
    ``result()`` on the threaded front, ``asyncio.wrap_future`` on the
    asyncio one — then calls :meth:`finish` or :meth:`fail` to render
    the response (which also closes out the request's latency
    observation, so queue wait counts toward the SLO).
    """

    router: "Router"
    endpoint: str
    alias_headers: tuple[tuple[str, str], ...]
    started: float
    model: str
    return_logits: bool
    future: "Future[np.ndarray]" = field(repr=False)

    def finish(self, logits: np.ndarray) -> RouteResult:
        response = PredictResponse.from_result(
            self.model, logits, self.return_logits
        )
        return self.router._complete(
            200,
            response.to_payload(),
            JSON_CONTENT,
            self.alias_headers,
            self.endpoint,
            self.started,
        )

    def fail(self, error: BaseException) -> RouteResult:
        return self.router._error_result(
            error, self.endpoint, self.alias_headers, self.started
        )


class Router:
    """Route, execute, observe, and render — once, for every front."""

    def __init__(self, app: "ServeApp") -> None:
        self.app = app

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def handle(self, method: str, raw_path: str, body: bytes | None) -> RouteResult:
        """Blocking dispatch: resolves predict futures in-line."""
        outcome = self.begin(method, raw_path, body)
        if isinstance(outcome, RouteResult):
            return outcome
        try:
            logits = outcome.future.result(
                timeout=self.app.config.request_timeout
            )
        except BaseException as error:  # noqa: BLE001 — rendered as a response
            return outcome.fail(error)
        return outcome.finish(logits)

    def begin(
        self, method: str, raw_path: str, body: bytes | None
    ) -> RouteResult | PendingPredict:
        """Non-blocking dispatch.

        GET endpoints and every error path return a finished
        :class:`RouteResult`; an admitted predict returns a
        :class:`PendingPredict` for the transport to await.
        """
        path, _, query = raw_path.partition("?")
        stripped = path.rstrip("/") or "/"
        endpoint = LEGACY_ALIASES.get(stripped, stripped)
        alias = (
            tuple(DEPRECATION_HEADERS(endpoint)) if endpoint != stripped else ()
        )
        # Request latency spans an await boundary on the asyncio front,
        # which the accumulating Timer cannot bridge; these paired
        # monotonic reads are the serving tier's one latency measurement.
        started = time.monotonic()  # repro-lint: disable=RPL009 — request latency measured once at the transport edge
        with span("serve.request", endpoint=endpoint):
            try:
                if method == "POST" and endpoint == _PREDICT:
                    return self._begin_predict(body, endpoint, alias, started)
                if method == "GET":
                    payload = self._route_get(endpoint, query)
                else:
                    raise _NoRoute(stripped)
            except BaseException as error:  # noqa: BLE001 — rendered as a response
                return self._error_result(error, endpoint, alias, started)
        if isinstance(payload, str):
            return self._complete_text(
                200, payload, PROMETHEUS_CONTENT, alias, endpoint, started
            )
        return self._complete(200, payload, JSON_CONTENT, alias, endpoint, started)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _route_get(self, endpoint: str, query: str) -> dict[str, Any] | str:
        # Optional-capability dispatch: an app advertises a GET route by
        # having its handler attribute at all.  The serving tier's
        # ServeApp has models/predict but no campaign view; the coord
        # watch front (repro.coord.watch.WatchApp) is the reverse.  A
        # missing handler is a plain 404, same as an unknown path.
        app = self.app
        if endpoint == _HEALTHZ:
            return app.health()
        if endpoint == _MODELS:
            describe = getattr(app, "describe_models", None)
            if describe is None:
                raise _NoRoute(endpoint)
            return describe()
        if endpoint == _CAMPAIGN:
            campaign_status = getattr(app, "campaign_status", None)
            if campaign_status is None:
                raise _NoRoute(endpoint)
            return campaign_status()
        if endpoint == _METRICS:
            params = parse_qs(query)
            if params.get("format", ["json"])[-1] == "prometheus":
                return app.metrics.render_prometheus()
            return app.metrics.snapshot()
        raise _NoRoute(endpoint)

    def _begin_predict(
        self,
        body: bytes | None,
        endpoint: str,
        alias: tuple[tuple[str, str], ...],
        started: float,
    ) -> PendingPredict:
        submit = getattr(self.app, "submit_predict", None)
        if submit is None:  # status-only hosts (WatchApp) take no predicts
            raise _NoRoute(endpoint)
        request = PredictRequest.from_payload(self._parse_body(body))
        name, future = submit(request.inputs, model=request.model)
        return PendingPredict(
            router=self,
            endpoint=endpoint,
            alias_headers=alias,
            started=started,
            model=name,
            return_logits=request.return_logits,
            future=future,
        )

    @staticmethod
    def _parse_body(body: bytes | None) -> dict[str, Any]:
        if not body:
            raise ConfigurationError("request body must be a JSON object")
        parsed = json.loads(body.decode("utf-8"))
        if not isinstance(parsed, dict):
            raise ConfigurationError("request body must be a JSON object")
        return parsed

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _complete(
        self,
        status: int,
        payload: dict[str, Any],
        content_type: str,
        headers: tuple[tuple[str, str], ...],
        endpoint: str,
        started: float,
    ) -> RouteResult:
        elapsed = time.monotonic() - started  # repro-lint: disable=RPL009 — closes the request-latency measurement opened in begin()
        self.app.observe_request(endpoint, status, elapsed)
        return RouteResult(
            status=status,
            body=dump_payload(payload),
            content_type=content_type,
            headers=headers,
        )

    def _complete_text(
        self,
        status: int,
        text: str,
        content_type: str,
        headers: tuple[tuple[str, str], ...],
        endpoint: str,
        started: float,
    ) -> RouteResult:
        elapsed = time.monotonic() - started  # repro-lint: disable=RPL009 — closes the request-latency measurement opened in begin()
        self.app.observe_request(endpoint, status, elapsed)
        return RouteResult(
            status=status,
            body=text.encode("utf-8"),
            content_type=content_type,
            headers=headers,
        )

    def _error_result(
        self,
        error: BaseException,
        endpoint: str,
        alias: tuple[tuple[str, str], ...],
        started: float,
    ) -> RouteResult:
        status, payload, extra = self._map_error(error, endpoint)
        return self._complete(
            status, payload, JSON_CONTENT, alias + extra, endpoint, started
        )

    def _map_error(
        self, error: BaseException, endpoint: str
    ) -> tuple[int, dict[str, Any], tuple[tuple[str, str], ...]]:
        if isinstance(error, _NoRoute):
            return 404, {"error": f"no route {error.path}"}, ()
        if isinstance(error, ServerOverloadedError):
            # RFC-compliant Retry-After is integral seconds; the precise
            # hint rides in the body for clients that parse it.
            retry_after = max(1, math.ceil(error.retry_after_s))
            return (
                429,
                ErrorBody(str(error), error.retry_after_s).to_payload(),
                (("Retry-After", str(retry_after)),),
            )
        if isinstance(error, ConfigurationError):
            status = 404 if "unknown model" in str(error) else 400
            return status, {"error": str(error)}, ()
        if isinstance(error, ReproError):
            return 400, {"error": str(error)}, ()
        if isinstance(error, (ValueError, TypeError, KeyError)):
            return 400, {"error": f"bad request: {error}"}, ()
        _logger.exception("unhandled error serving %s", endpoint)
        return 500, {"error": f"internal error: {error}"}, ()
