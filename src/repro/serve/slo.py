"""Latency SLO tracking: p50/p99 estimates and burn rate for ``/healthz``.

A latency SLO here is the standard shape: *99% of requests complete
within the target* — i.e. the p99 latency stays at or under
``target_p99_ms``, with a 1% violation budget.  :class:`SloTracker`
counts every request against that budget and reports:

- ``p50_ms`` / ``p99_ms`` — bucket-interpolated estimates from a
  log-scale histogram (same bounds as the serving latency metric, so
  the healthz numbers and the Prometheus series agree);
- ``violations`` / ``violation_rate`` — requests over target;
- ``burn_rate`` — violation rate divided by the 1% budget.  1.0 means
  the server is spending its error budget exactly as fast as the SLO
  allows; above 1.0 it is burning budget it does not have (a page),
  below 1.0 it is healthy.

The tracker is cumulative over the server's lifetime — the right shape
for a smoke-testable reference implementation; a windowed variant would
slot in behind the same ``observe``/``report`` interface.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError
from repro.obs.metrics import Histogram

__all__ = ["SloTracker"]

#: The violation budget behind a p99 target: 1% of requests may exceed it.
_P99_BUDGET = 0.01


class SloTracker:
    """Cumulative latency-SLO accounting against a p99 target."""

    def __init__(
        self, target_p99_ms: float, buckets: tuple[float, ...]
    ) -> None:
        if target_p99_ms <= 0:
            raise ConfigurationError(
                f"target_p99_ms must be > 0, got {target_p99_ms}"
            )
        self.target_p99_ms = float(target_p99_ms)
        self._lock = threading.Lock()
        self._histogram = Histogram(buckets)
        self._violations = 0

    def __getstate__(self) -> dict[str, object]:
        """Trackers hold a lock; refuse to pickle (RPL007)."""
        raise TypeError(
            "SloTracker holds a lock and cannot be pickled; export "
            "report() instead"
        )

    def observe(self, latency_ms: float) -> None:
        with self._lock:
            self._histogram.observe(latency_ms)
            if latency_ms > self.target_p99_ms:
                self._violations += 1

    def report(self) -> dict[str, object]:
        """JSON-ready SLO state for ``GET /v1/healthz``."""
        with self._lock:
            total = self._histogram.total
            violations = self._violations
            p50 = self._histogram.quantile(0.5)
            p99 = self._histogram.quantile(0.99)
        violation_rate = violations / total if total else 0.0
        return {
            "target_p99_ms": self.target_p99_ms,
            "requests": total,
            "p50_ms": round(p50, 3),
            "p99_ms": round(p99, 3),
            "violations": violations,
            "violation_rate": round(violation_rate, 6),
            # Error-budget burn: 1.0 = spending the 1% violation budget
            # exactly at the allowed rate; > 1.0 = out of budget.
            "burn_rate": round(violation_rate / _P99_BUDGET, 4),
            "healthy": violation_rate <= _P99_BUDGET,
        }
