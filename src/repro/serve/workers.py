"""Multi-process plan lanes: compiled inference in worker processes.

The threaded serving path keeps every model — and its compiled
:class:`repro.runtime.InferencePlan` — in the server process, which caps
throughput at one GIL.  :class:`WorkerPool` moves the forward passes out:
each worker process owns a private :class:`~repro.serve.registry.ModelRegistry`
(so plans compile once per worker and never cross a process boundary —
they cannot: lanes, registries and plans all refuse pickling under
RPL007), and the parent ships only ``(name, checkpoint_path, inputs)``
over a pipe.  Workers load and compile lazily on first sight of a name,
or eagerly via :meth:`WorkerPool.warm`.

Chaos mode keeps its exact flip/restore semantics *inside each worker*:
every worker builds its own :class:`~repro.serve.chaos.ChaosEngine` per
model, seeded ``derive_seed(seed, "lane", index)`` so lanes inject
distinct but reproducible fault streams, and returns the picklable
:class:`~repro.serve.metrics.ChaosBatchReport` for the parent's metrics.

Fault tolerance: a batch sent to a worker that died mid-service raises
``EOFError``/``OSError`` at the pipe; the pool restarts that lane in
place and resubmits the batch once — queued requests never drop because
the queue lives in the parent's micro-batcher, not the worker.  A
restarted lane's chaos stream restarts from batch 0 (the same semantics
as evicting and reloading a model in the threaded path).

``close(drain=True)`` takes every lane out of the idle pool first — an
in-flight batch therefore finishes before its worker sees the shutdown
message — then joins, then terminates stragglers past the timeout.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import replace
from multiprocessing.connection import Connection
from typing import Callable

import numpy as np

from repro.errors import (
    ConfigurationError,
    ReproError,
    ServerOverloadedError,
    ShapeError,
)
from repro.runtime.config import RuntimeConfig
from repro.serve.chaos import ChaosConfig
from repro.serve.metrics import ChaosBatchReport
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed

__all__ = ["WorkerLane", "WorkerPool"]

_logger = get_logger("serve.workers")

#: Remote exception class names the parent re-raises as themselves.
_ERROR_TYPES: dict[str, type[Exception]] = {
    "ConfigurationError": ConfigurationError,
    "ShapeError": ShapeError,
    "ServerOverloadedError": ServerOverloadedError,
    "ReproError": ReproError,
}


def _worker_main(
    conn: Connection,
    index: int,
    capacity: int,
    runtime_config: RuntimeConfig,
    chaos_config: ChaosConfig | None,
) -> None:
    """Worker-process entry point: serve pipe requests until shutdown.

    Top-level (not a closure) so it imports cleanly under the ``spawn``
    start method.  Every request is answered — exceptions become
    ``("error", classname, message)`` replies — so the parent never
    hangs on a recv unless the process itself dies.
    """
    from repro.serve.chaos import ChaosEngine
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(capacity=capacity, config=runtime_config)
    engines: dict[str, ChaosEngine] = {}

    def entry_for(name: str, path: str):
        if name not in registry:
            registry.register(name, path)
        return registry.get(name)

    def forward(name: str, path: str, inputs: np.ndarray, chaos: bool):
        entry = entry_for(name, path)
        with entry.infer_lock:
            if not chaos or chaos_config is None:
                return entry.forward(inputs), None
            engine = engines.get(name)
            if engine is None:
                engine = engines[name] = ChaosEngine(entry, chaos_config)
            return engine.run_batch(entry.forward, inputs)

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away; nothing left to serve
        op = message[0]
        try:
            if op == "shutdown":
                conn.send(("ok", None, None))
                return
            if op == "warm":
                _, name, path = message
                entry_for(name, path)
                conn.send(("ok", None, None))
            elif op in ("predict", "predict_clean"):
                _, name, path, inputs = message
                outputs, report = forward(
                    name, path, inputs, chaos=(op == "predict")
                )
                conn.send(("ok", np.asarray(outputs), report))
            else:
                conn.send(("error", "ConfigurationError", f"unknown op {op!r}"))
        except BaseException as error:  # noqa: BLE001 — shipped to the parent
            try:
                conn.send(("error", type(error).__name__, str(error)))
            except (OSError, ValueError):
                return


class WorkerLane:
    """One worker process plus the parent's end of its pipe."""

    def __init__(
        self,
        index: int,
        context: multiprocessing.context.BaseContext,
        capacity: int,
        runtime_config: RuntimeConfig,
        chaos_config: ChaosConfig | None,
    ) -> None:
        self.index = index
        parent_conn, child_conn = context.Pipe()
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, index, capacity, runtime_config, chaos_config),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def __getstate__(self) -> dict[str, object]:
        """Lanes own a process and a pipe; refuse to pickle (RPL007)."""
        raise TypeError(
            "WorkerLane owns a live process and pipe and cannot be "
            "pickled; spawn lanes in the owning process"
        )

    def request(self, message: tuple, timeout: float) -> tuple:
        """One round trip; raises ``EOFError``/``OSError`` on lane death."""
        self.conn.send(message)
        if not self.conn.poll(timeout):
            raise TimeoutError(
                f"worker {self.index} did not answer within {timeout}s"
            )
        return self.conn.recv()

    def shutdown(self, timeout: float) -> None:
        try:
            self.conn.send(("shutdown",))
            self.conn.poll(timeout)
        except (OSError, ValueError, EOFError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """Fixed fleet of worker lanes with restart-in-place fault tolerance.

    Parameters
    ----------
    workers:
        Lane count (>= 1).  Up to this many batches run concurrently.
    mp_start:
        Multiprocessing start method (``"spawn"`` or ``"fork"``).
    runtime_config:
        Forwarded to each worker's private registry — ``enabled=True``
        makes every lane serve through compiled plans.
    chaos:
        Optional chaos config; each lane re-seeds it per its index.
    registry_capacity:
        Resident-model cap inside each worker.
    request_timeout:
        Seconds a lane may take to answer one batch before the pool
        declares it wedged and restarts it.
    on_restart:
        Optional zero-argument observer called per restart (metrics).
    """

    def __init__(
        self,
        workers: int,
        mp_start: str = "spawn",
        runtime_config: RuntimeConfig | None = None,
        chaos: ChaosConfig | None = None,
        registry_capacity: int = 4,
        request_timeout: float = 60.0,
        on_restart: Callable[[], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if mp_start not in ("spawn", "fork", "forkserver"):
            raise ConfigurationError(
                f'mp_start must be "spawn", "fork" or "forkserver", '
                f"got {mp_start!r}"
            )
        self.mp_start = mp_start
        self.workers = int(workers)
        self.registry_capacity = int(registry_capacity)
        self.request_timeout = float(request_timeout)
        self.runtime_config = runtime_config or RuntimeConfig()
        self._chaos = chaos
        self._context = multiprocessing.get_context(mp_start)
        self._on_restart = on_restart
        self._gate = threading.Lock()
        self._closed = False
        self.restarts = 0
        self._lanes: list[WorkerLane] = [
            self._spawn(index) for index in range(self.workers)
        ]
        self._idle: queue.Queue[WorkerLane] = queue.Queue()
        for lane in self._lanes:
            self._idle.put(lane)

    def __getstate__(self) -> dict[str, object]:
        """Pools own processes, pipes and locks; refuse to pickle (RPL007)."""
        raise TypeError(
            "WorkerPool owns worker processes and pipes and cannot be "
            "pickled; build one per server process"
        )

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------
    def _lane_chaos(self, index: int) -> ChaosConfig | None:
        if self._chaos is None:
            return None
        # Distinct, reproducible fault streams per lane: same traffic on
        # the same lane index injects the same faults.
        return replace(
            self._chaos, seed=derive_seed(self._chaos.seed, "lane", index)
        )

    def _spawn(self, index: int) -> WorkerLane:
        return WorkerLane(
            index=index,
            context=self._context,
            capacity=self.registry_capacity,
            runtime_config=self.runtime_config,
            chaos_config=self._lane_chaos(index),
        )

    def _restart(self, lane: WorkerLane) -> WorkerLane:
        _logger.warning(
            "worker %d died or wedged; restarting in place", lane.index
        )
        lane.shutdown(timeout=1.0)
        fresh = self._spawn(lane.index)
        with self._gate:
            self._lanes[self._lanes.index(lane)] = fresh
            self.restarts += 1
        if self._on_restart is not None:
            self._on_restart()
        return fresh

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _checkout(self) -> WorkerLane:
        with self._gate:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
        # Blocks while every lane is busy; the micro-batcher above this
        # pool runs at most `workers` concurrent batches, so waits here
        # are transient (a lane mid-restart).
        try:
            return self._idle.get(timeout=self.request_timeout)
        except queue.Empty:
            with self._gate:
                if self._closed:
                    raise ConfigurationError("worker pool is closed") from None
            raise ReproError(
                f"no worker lane became idle within {self.request_timeout}s"
            ) from None

    def _roundtrip(self, lane: WorkerLane, message: tuple) -> tuple:
        """Send once; on lane death or wedge, restart and resubmit once.

        Inference batches are pure (chaos restores parameters before
        replying), so one resubmission after a crash cannot double-apply
        anything — the lost batch simply never produced output.
        """
        try:
            return lane.request(message, self.request_timeout), lane
        except (EOFError, OSError, BrokenPipeError, TimeoutError):
            fresh = self._restart(lane)
            return fresh.request(message, self.request_timeout), fresh

    def _unpack(self, reply: tuple) -> tuple[np.ndarray, ChaosBatchReport | None]:
        status = reply[0]
        if status == "ok":
            return reply[1], reply[2]
        kind, message = reply[1], reply[2]
        error_type = _ERROR_TYPES.get(kind)
        if error_type is not None:
            raise error_type(message)
        raise ReproError(f"worker error ({kind}): {message}")

    def run_batch(
        self, name: str, path: str, inputs: np.ndarray, chaos: bool = True
    ) -> tuple[np.ndarray, ChaosBatchReport | None]:
        """Run one coalesced batch on an idle lane; returns (logits, report)."""
        lane = self._checkout()
        returned = False
        try:
            op = "predict" if chaos else "predict_clean"
            reply, lane = self._roundtrip(lane, (op, name, path, inputs))
            self._idle.put(lane)
            returned = True
            return self._unpack(reply)
        finally:
            if not returned:
                self._idle.put(lane)

    def warm(self, name: str, path: str) -> None:
        """Load (and compile) ``name`` on every lane before traffic."""
        for _ in range(self.workers):
            lane = self._checkout()
            try:
                reply, lane = self._roundtrip(lane, ("warm", name, path))
                self._unpack(reply)
            finally:
                self._idle.put(lane)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def report(self) -> dict[str, object]:
        """JSON-ready lane state for ``GET /v1/healthz``."""
        with self._gate:
            lanes = list(self._lanes)
            restarts = self.restarts
        return {
            "mode": "process",
            "count": len(lanes),
            "mp_start": self.mp_start,
            "alive": sum(1 for lane in lanes if lane.process.is_alive()),
            "restarts": restarts,
        }

    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Shut every lane down; with ``drain``, in-flight batches finish.

        Draining works by reclaiming lanes through the idle queue — a
        lane serving a batch is not idle, so it is only reclaimed (and
        only then told to shut down) after replying to its caller.
        """
        with self._gate:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes)
        reclaimed: list[WorkerLane] = []
        if drain:
            for _ in lanes:
                try:
                    reclaimed.append(self._idle.get(timeout=timeout))
                except queue.Empty:
                    break
        for lane in lanes:
            lane.shutdown(timeout=timeout if lane in reclaimed else 1.0)
