"""Durable, resumable, shardable campaign storage (+ vulnerability atlas).

``CampaignStore`` journals every fault-injection trial to disk as it
completes, so campaigns survive crashes, resume bit-identically, split
across hosts with ``shard=(i, n)``, and merge back into one result.
``build_atlas`` aggregates the journaled fault sites into per-layer and
per-bit sensitivity maps.  See :mod:`repro.store.store` for the format.
"""

from repro.store.atlas import build_atlas
from repro.store.store import (
    CampaignInterrupted,
    CampaignStore,
    JournalProgress,
    StoredFaultModel,
    StoreError,
    TrialRecord,
    config_key,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignStore",
    "JournalProgress",
    "StoreError",
    "StoredFaultModel",
    "TrialRecord",
    "build_atlas",
    "config_key",
]
