"""The vulnerability atlas: per-layer and per-bit sensitivity maps.

Every journaled trial records the concrete fault sites it applied as
``(layer, bit)`` pairs (see :class:`repro.store.TrialRecord`).  The
atlas aggregates those across a whole store: for each parameter tensor
and for each bit position, how many trials hit it, how the accuracy of
those trials distributed, and how often they turned into silent data
corruption — the FT-ClipAct-style resilience breakdown that motivates
where protection effort should go (high bit positions and wide early
layers dominate the damage).

Attribution is at trial granularity: a trial that flipped bits in two
layers contributes its outcome to both rows (single-trial outcomes
cannot be decomposed further).  Trials whose Binomial draw produced no
flips hit nothing and appear only in the overall totals.

Raw SDC rates are biased by fault-space size — a wide layer absorbs
more uniform-sampling hits than a narrow one at equal per-bit
sensitivity, and the paper's protection decisions need the per-bit
view.  When the store's identity records the fault-space geometry
(``layer_words`` × ``word_bits``, journaled by campaigns whose injector
exposes them), each row also carries ``fault_space_bits`` and
``sdc_density`` — the SDC rate divided by the bits the row's sampling
universe holds (a layer row's own bits; for bit-position rows the one
bit per word across all layers).  Densities are comparable *across*
rows where raw rates are not; stores journaled before the geometry was
recorded simply omit the fields.

The output is a JSON-ready dict; :func:`repro.eval.reporting.format_atlas`
renders it as markdown.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import ConfigurationError
from repro.fault.statistics import is_sdc, wilson_interval
from repro.store.store import CampaignStore

__all__ = ["build_atlas"]


def _rows(
    outcomes: dict[int, list[float]],
    flips: dict[int, int],
    baseline: float,
    tolerance: float,
    confidence: float,
    space: dict[int, int] | None = None,
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for group in outcomes:
        accuracies = np.asarray(outcomes[group], dtype=np.float64)
        sdc = int(np.count_nonzero(is_sdc(accuracies, baseline, tolerance)))
        low, high = wilson_interval(sdc, accuracies.size, confidence)
        row: dict[str, object] = {
            "trials": int(accuracies.size),
            "flips": int(flips[group]),
            "mean_accuracy": float(accuracies.mean()),
            "min_accuracy": float(accuracies.min()),
            "sdc": sdc,
            "sdc_rate": sdc / accuracies.size,
            "sdc_ci": [low, high],
        }
        bits = space.get(group) if space is not None else None
        if bits:
            # Per-bit vulnerability density: raw SDC rate normalised by
            # the row's fault-space size, comparable across rows.
            row["fault_space_bits"] = int(bits)
            row["sdc_density"] = (sdc / accuracies.size) / bits
        rows.append(row)
    return rows


def build_atlas(
    store: CampaignStore,
    baseline: float | None = None,
    tolerance: float = 0.01,
    confidence: float = 0.95,
) -> dict[str, object]:
    """Aggregate a store's journal into the layer/bit vulnerability atlas.

    Parameters
    ----------
    store:
        The campaign store to aggregate (all configs, all journaled
        trials — completeness is not required, the atlas reflects
        whatever has been journaled so far).
    baseline:
        Fault-free accuracy that defines silent data corruption;
        defaults to the ``clean_accuracy`` recorded in the store's meta
        (``repro campaign run`` writes it).
    tolerance:
        A trial is an SDC when its accuracy drops more than this below
        ``baseline`` (:func:`repro.fault.statistics.is_sdc`).
    confidence:
        Confidence level of the per-row Wilson SDC-rate intervals.
    """
    if baseline is None:
        recorded = store.meta.get("clean_accuracy")
        if recorded is None:
            raise ConfigurationError(
                "no baseline: pass baseline= or record clean_accuracy "
                "in the store meta"
            )
        baseline = float(recorded)
    if not 0.0 <= baseline <= 1.0:
        raise ConfigurationError(f"baseline must be in [0, 1], got {baseline}")

    layers = store.layers
    layer_outcomes: dict[int, list[float]] = defaultdict(list)
    layer_flips: dict[int, int] = defaultdict(int)
    bit_outcomes: dict[int, list[float]] = defaultdict(list)
    bit_flips: dict[int, int] = defaultdict(int)
    trials = 0
    trials_with_faults = 0
    total_flips = 0
    for key in store.config_keys():
        for record in store.records(key).values():
            trials += 1
            total_flips += len(record.sites)
            if not record.sites:
                continue
            trials_with_faults += 1
            hit_layers: set[int] = set()
            hit_bits: set[int] = set()
            for layer, bit in record.sites:
                layer_flips[layer] += 1
                bit_flips[bit] += 1
                hit_layers.add(layer)
                hit_bits.add(bit)
            for layer in hit_layers:
                layer_outcomes[layer].append(record.accuracy)
            for bit in hit_bits:
                bit_outcomes[bit].append(record.accuracy)

    identity = store.identity
    layer_words = identity.get("layer_words")
    word_bits = identity.get("word_bits")
    layer_space: dict[int, int] | None = None
    bit_space: dict[int, int] | None = None
    if layer_words and word_bits:
        words = [int(w) for w in layer_words]
        bits_per_word = int(word_bits)
        layer_space = {
            layer: words[layer] * bits_per_word
            for layer in layer_outcomes
            if 0 <= layer < len(words)
        }
        # A bit position occurs once per word, in every layer.
        bit_space = {bit: sum(words) for bit in bit_outcomes}

    layer_order = sorted(layer_outcomes)
    bit_order = sorted(bit_outcomes)
    layer_rows = _rows(
        {layer: layer_outcomes[layer] for layer in layer_order},
        layer_flips,
        baseline,
        tolerance,
        confidence,
        layer_space,
    )
    bit_rows = _rows(
        {bit: bit_outcomes[bit] for bit in bit_order},
        bit_flips,
        baseline,
        tolerance,
        confidence,
        bit_space,
    )
    for layer, row in zip(layer_order, layer_rows):
        row["layer"] = (
            layers[layer] if 0 <= layer < len(layers) else f"layer[{layer}]"
        )
    for bit, row in zip(bit_order, bit_rows):
        row["bit"] = int(bit)
    return {
        "baseline": float(baseline),
        "tolerance": float(tolerance),
        "confidence": float(confidence),
        "trials": trials,
        "trials_with_faults": trials_with_faults,
        "flips": total_flips,
        "layers_total": len(layers),
        "layers_unhit": len(layers) - len(layer_order),
        "layers": [
            {"layer": row.pop("layer"), **row} for row in layer_rows
        ],
        "bits": [{"bit": row.pop("bit"), **row} for row in bit_rows],
    }
