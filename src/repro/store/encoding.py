"""Exact-float JSON encoding for store artefacts.

Every byte the store writes must round-trip: a resumed campaign replays
journaled accuracies and must reproduce the original float64s bit for
bit, and the shard-merge / resume CI checks compare store files with
``cmp``.  Python's :mod:`json` already serialises floats via ``repr``
(shortest string that round-trips), so the *encoding* is exact — what
these wrappers add is the contract around it:

- ``allow_nan=False``: ``NaN``/``Infinity`` are not JSON and do not
  round-trip through other readers; a fault campaign that produces one
  should fail loudly at write time, not corrupt the journal.
- One compact separator convention (``(",", ":")`` when unindented) so
  journal lines and identity hashes are byte-stable across call sites.

All JSON writes inside :mod:`repro.store` must go through this module;
RPL005 (``repro lint``) enforces it.
"""

from __future__ import annotations

import json
from typing import IO, Any

__all__ = ["exact_json_dump", "exact_json_dumps"]


def exact_json_dumps(
    payload: Any,
    *,
    indent: int | None = None,
    sort_keys: bool = False,
) -> str:
    """Serialise ``payload`` with exact-float guarantees.

    Unindented output is compact (``(",", ":")`` separators); indented
    output keeps :mod:`json`'s default separators, matching what the
    manifest and atlas files have always contained.
    """
    return json.dumps(
        payload,
        indent=indent,
        sort_keys=sort_keys,
        separators=(",", ":") if indent is None else None,
        allow_nan=False,
    )


def exact_json_dump(
    payload: Any,
    handle: IO[str],
    *,
    indent: int | None = None,
    sort_keys: bool = False,
) -> None:
    """File-writing counterpart of :func:`exact_json_dumps`."""
    handle.write(exact_json_dumps(payload, indent=indent, sort_keys=sort_keys))
