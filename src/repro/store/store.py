"""Durable, resumable, shardable campaign storage.

A :class:`CampaignStore` is a directory holding one campaign's entire
fault-injection record:

- ``manifest.json`` — the campaign's *identity* (seed, trial count,
  shard slice, a fingerprint of the injector's fault space, the
  parameter-name table) plus one entry per fault configuration and
  free-form run metadata.  Rewritten atomically (temp file + rename) on
  every update.
- ``trials.jsonl`` — the append-only trial journal: one JSON line per
  completed trial with its exact accuracy, realised flip count, and the
  applied fault sites as ``(layer, bit)`` pairs.  Each line is flushed
  as it is written, so a crash at trial 4,900/5,000 loses at most the
  in-flight trial; a torn trailing line (the crash landed mid-write) is
  detected, ignored on load, and truncated before the next append.

Because campaign trial seeds are schedule-independent (see
:mod:`repro.fault.parallel`), a store makes campaigns:

- **durable** — every completed trial survives the process;
- **resumable** — :meth:`repro.fault.FaultCampaign.run` with ``store=``
  replays journaled trials and evaluates only the missing ones, so an
  interrupted-then-resumed campaign is bit-identical to an
  uninterrupted run;
- **shardable** — campaigns created with ``shard=(i, n)`` journal
  disjoint trial slices into separate stores that :meth:`merge` folds
  back into one, equal to the unsharded run.

Floats round-trip exactly through JSON (``repr`` shortest-round-trip),
so replayed accuracies are the bit-identical float64s the evaluator
produced.

Each journal *file* has one writer.  ``trials.jsonl`` belongs to the
classic single-writer path (``campaign run``/``resume``); coordinated
workers (:mod:`repro.coord`) open the store with a ``segment`` name and
append to their own ``trials.<segment>.jsonl`` instead, so N workers
share one store directory without ever sharing a file descriptor.
Loading folds the shared journal plus every segment together: a
(config, trial) pair journaled twice must hold *equal* records (trial
seeds are schedule-independent, so honest re-execution is byte-equal
modulo timing) and is deduplicated; unequal copies are a corruption
error.  Worker names live only in file names, never in record bytes —
artifacts derived from a multi-writer store are byte-identical to a
single-writer run's.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, BinaryIO, Protocol

import numpy as np

from repro.errors import CampaignInterrupted, ConfigurationError, ReproError
from repro.fault.parallel import TrialOutcome
from repro.obs.metrics import default_registry
from repro.store.encoding import exact_json_dump, exact_json_dumps
from repro.utils.logging import get_logger

if TYPE_CHECKING:
    from repro.fault.campaign import CampaignResult, FaultCampaign

__all__ = [
    "CampaignInterrupted",
    "CampaignStore",
    "JournalProgress",
    "StoreError",
    "StoredFaultModel",
    "TrialRecord",
    "config_key",
]

_logger = get_logger("store")

#: Trials journaled by this process, across all stores — the live
#: progress counter `repro campaign status --follow` reads.
_TRIALS_JOURNALED = default_registry().counter(
    "repro_campaign_trials_journaled_total",
    "Trial outcomes appended to campaign journals by this process.",
)

_MANIFEST = "manifest.json"
_JOURNAL = "trials.jsonl"
_SEGMENT_PREFIX = "trials."
_SEGMENT_SUFFIX = ".jsonl"
#: Segment names become file names; keep them flat and unambiguous
#: (no dots, so ``trials.<segment>.jsonl`` parses back uniquely).
_SEGMENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)
_VERSION = 1


class StoreError(ReproError):
    """A campaign store is missing, corrupt, or incompatible."""


class Describable(Protocol):
    """Anything with a deterministic ``describe()`` spec string.

    The store journals fault models by this string alone (callables
    don't serialise); every fault model in :mod:`repro.fault` satisfies
    it, as does :class:`StoredFaultModel` itself.
    """

    def describe(self) -> str: ...


@dataclass(frozen=True)
class StoredFaultModel:
    """Stand-in fault model rebuilt from a journal (``describe`` only).

    Stores persist a fault model's deterministic ``describe()`` string,
    not the object (``param_filter`` callables don't serialise); results
    rebuilt from a store carry this shim in the ``fault_model`` slot.
    """

    spec: str

    def describe(self) -> str:
        return self.spec


@dataclass(frozen=True)
class TrialRecord:
    """One journaled trial: the outcome plus its applied fault sites.

    ``sites`` holds ``(layer_index, bit_position)`` pairs — layer
    indices point into the manifest's parameter-name table — recorded
    from the concrete sites each trial actually flipped; they are the
    raw material of the vulnerability atlas (:mod:`repro.store.atlas`).

    ``seconds`` is wall-clock, not identity (mirrors
    :class:`~repro.fault.parallel.TrialOutcome`): two hosts that
    deterministically re-ran the same trial journal equal records, so
    ``merge`` deduplicates them instead of reporting a bogus conflict.
    """

    index: int
    accuracy: float
    flips: int
    sites: tuple[tuple[int, int], ...]
    seconds: float = field(default=0.0, compare=False)

    def outcome(self) -> TrialOutcome:
        return TrialOutcome(
            index=self.index,
            accuracy=self.accuracy,
            flips=self.flips,
            seconds=self.seconds,
        )


def config_key(tag: str, spec: str) -> str:
    """The journal key of one (tag, fault-spec) configuration.

    Public so read-only consumers (:mod:`repro.coord` admission checks,
    the watch view) can name configs without registering them.
    """
    return f"{tag}::{spec}"


_config_key = config_key


@dataclass(frozen=True)
class JournalProgress:
    """A cheap scan of every journal file's (config, trial) coverage.

    ``indices`` maps config key to the set of journaled trial indices
    (union over all writers); ``segments`` maps writer name to its
    parsed record count, with ``""`` standing for the shared
    single-writer journal.  Produced by
    :meth:`CampaignStore.scan_progress` without building records, so
    coordination loops can poll it while other workers append.
    """

    indices: dict[str, set[int]]
    segments: dict[str, int]

    def journaled(self, key: str) -> set[int]:
        return self.indices.get(key, set())


def _identity_hash(identity: Mapping[str, object]) -> str:
    """Order-independent digest of a campaign identity (the config hash)."""
    text = exact_json_dumps(identity, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _mismatched_fields(
    ours: Mapping[str, object], theirs: Mapping[str, object]
) -> list[str]:
    """Identity fields whose values differ (for diagnostics)."""
    return [
        key
        for key in sorted(set(ours) | set(theirs))
        if ours.get(key) != theirs.get(key)
    ]


class CampaignStore:
    """One campaign's on-disk journal; see the module docstring.

    Construct through :meth:`create`, :meth:`open`, or (the usual entry
    point) :meth:`for_campaign`, which creates a fresh store or reopens
    an existing one and verifies it belongs to the given campaign.
    """

    def __init__(
        self,
        path: str,
        manifest: dict[str, Any],
        records: dict[str, dict[int, TrialRecord]],
        journal_end: int,
        segment: str | None = None,
    ) -> None:
        self.path = path
        self._manifest = manifest
        self._records = records
        self._journal_end = journal_end
        self._segment = segment
        self._writer: BinaryIO | None = None
        self.appended = 0
        #: Journal at most this many new trials, then raise
        #: :class:`CampaignInterrupted` (None = unlimited).  Powers
        #: time-boxed incremental runs (``repro campaign run --limit``).
        self.max_new_records: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def campaign_identity(campaign: "FaultCampaign") -> dict[str, object]:
        """The identity block a campaign's store must match to resume.

        ``layer_words``/``word_bits`` record each layer's fault-space
        size (words per layer, bits per word) when the injector exposes
        them — the denominators :func:`repro.store.atlas.build_atlas`
        normalises raw SDC rates by to get per-bit vulnerability
        densities.  They are derived from the same planned fault space
        the fingerprint hashes, so including them adds no new ways for
        resume to mismatch.
        """
        injector = campaign.injector
        fingerprint = getattr(injector, "fingerprint", None)
        words = getattr(injector, "parameter_words", None)
        fmt = getattr(injector, "fmt", None)
        bits = getattr(fmt, "total_bits", None)
        return {
            "seed": int(campaign.seed),
            "trials": int(campaign.trials),
            "shard": list(campaign.shard) if campaign.shard is not None else None,
            "fingerprint": fingerprint() if callable(fingerprint) else "unknown",
            "layers": list(getattr(injector, "parameter_names", [])),
            "layer_words": [int(w) for w in words] if words is not None else None,
            "word_bits": int(bits) if bits is not None else None,
        }

    @classmethod
    def exists(cls, path: str | os.PathLike[str]) -> bool:
        """Whether ``path`` already holds a campaign store.

        The single place that knows the on-disk layout — callers decide
        create-vs-resume through this instead of probing file names.
        """
        return os.path.exists(os.path.join(os.fspath(path), _MANIFEST))

    @classmethod
    def create(
        cls,
        path: str | os.PathLike[str],
        identity: Mapping[str, object],
        meta: Mapping[str, object] | None = None,
    ) -> "CampaignStore":
        """Initialise a fresh store directory (fails if one exists)."""
        path = os.fspath(path)
        if cls.exists(path):
            raise StoreError(f"{path!r} already holds a campaign store")
        os.makedirs(path, exist_ok=True)
        identity = dict(identity)
        manifest: dict[str, Any] = {
            "version": _VERSION,
            "identity": identity,
            "config_hash": _identity_hash(identity),
            "configs": [],
            "meta": dict(meta or {}),
        }
        store = cls(path, manifest, {}, journal_end=0)
        # Touch the journal so a crash before the first trial still
        # leaves a well-formed (empty) store behind.
        with open(store._journal_path, "ab"):
            pass
        store._write_manifest()
        return store

    @staticmethod
    def _validated_segment(segment: str | None) -> str | None:
        if segment is None:
            return None
        if not segment or not set(segment) <= _SEGMENT_CHARS:
            raise StoreError(
                f"invalid segment name {segment!r}: use letters, digits, "
                "'-' and '_' only"
            )
        return segment

    @classmethod
    def open(
        cls, path: str | os.PathLike[str], segment: str | None = None
    ) -> "CampaignStore":
        """Load an existing store, tolerating a torn trailing record.

        With ``segment``, this instance's appends go to the private
        journal file ``trials.<segment>.jsonl`` instead of the shared
        ``trials.jsonl`` — the multi-writer mode :mod:`repro.coord`
        workers use.  Reading always folds every journal file together
        regardless of ``segment``.
        """
        path = os.fspath(path)
        segment = cls._validated_segment(segment)
        manifest_path = os.path.join(path, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StoreError(f"{path!r} is not a campaign store (no {_MANIFEST})")
        except json.JSONDecodeError as error:
            raise StoreError(f"{manifest_path!r} is corrupt: {error}")
        version = manifest.get("version")
        if version != _VERSION:
            raise StoreError(
                f"{path!r}: unsupported store version {version!r} "
                f"(this build reads version {_VERSION})"
            )
        expected = _identity_hash(manifest.get("identity", {}))
        if manifest.get("config_hash") != expected:
            raise StoreError(
                f"{path!r}: manifest config hash does not match its "
                "identity block (the manifest was edited or corrupted)"
            )
        store = cls(path, manifest, {}, journal_end=0, segment=segment)
        store._load_journal()
        return store

    @classmethod
    def for_campaign(
        cls,
        path: str | os.PathLike[str],
        campaign: "FaultCampaign",
        meta: Mapping[str, object] | None = None,
    ) -> "CampaignStore":
        """Create the campaign's store, or reopen and verify an existing one.

        An existing store must have been written by a campaign with the
        same seed, trial count, shard slice, and fault-space fingerprint
        — resuming against the wrong model or settings is an error, not
        a silently wrong merge of incompatible trials.  ``meta`` is only
        applied on creation; an existing store keeps its own.
        """
        if cls.exists(path):
            return cls.open(path).attach(campaign)
        return cls.create(path, cls.campaign_identity(campaign), meta=meta)

    def attach(self, campaign: "FaultCampaign") -> "CampaignStore":
        """Verify this (already-open) store belongs to ``campaign``.

        Returns ``self``, so callers that peeked at the store's meta can
        keep using the same instance instead of re-parsing the journal
        through a second :meth:`open`.
        """
        identity = self.campaign_identity(campaign)
        theirs = self.identity
        if theirs != identity:
            raise StoreError(
                f"store {self.path!r} belongs to a different campaign "
                f"(mismatched: {', '.join(_mismatched_fields(identity, theirs))})"
            )
        return self

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, _MANIFEST)

    @property
    def _journal_path(self) -> str:
        if self._segment is None:
            return os.path.join(self.path, _JOURNAL)
        return os.path.join(
            self.path, _SEGMENT_PREFIX + self._segment + _SEGMENT_SUFFIX
        )

    @property
    def segment(self) -> str | None:
        """This writer's segment name (None = the shared journal)."""
        return self._segment

    @property
    def identity(self) -> dict[str, Any]:
        identity: dict[str, Any] = dict(self._manifest["identity"])
        return identity

    @property
    def meta(self) -> dict[str, Any]:
        meta: dict[str, Any] = dict(self._manifest["meta"])
        return meta

    @property
    def config_hash(self) -> str:
        return str(self._manifest["config_hash"])

    @property
    def seed(self) -> int:
        return int(self._manifest["identity"]["seed"])

    @property
    def trials(self) -> int:
        return int(self._manifest["identity"]["trials"])

    @property
    def shard(self) -> tuple[int, int] | None:
        shard = self._manifest["identity"].get("shard")
        return None if shard is None else (int(shard[0]), int(shard[1]))

    @property
    def layers(self) -> list[str]:
        return list(self._manifest["identity"].get("layers", []))

    @property
    def _configs(self) -> list[dict[str, Any]]:
        configs: list[dict[str, Any]] = self._manifest["configs"]
        return configs

    def config_keys(self) -> list[str]:
        """Config keys in first-run order (the sweep's rate order)."""
        return [str(entry["key"]) for entry in self._configs]

    def config_entry(self, key: str) -> dict[str, Any]:
        for entry in self._configs:
            if entry["key"] == key:
                return entry
        raise StoreError(f"store has no config {key!r}")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        """Atomic rewrite: temp file in the same directory, then rename."""
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            exact_json_dump(self._manifest, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path)

    @staticmethod
    def _journal_file_names(path: str) -> list[str]:
        """All journal files in load order: shared first, then segments.

        Sorted segment names make the fold order deterministic, so two
        hosts opening the same directory agree on which copy of a
        duplicated record is "first" (they are equal anyway — the order
        only matters for error attribution).
        """
        names = [_JOURNAL]
        for name in sorted(os.listdir(path)):
            if (
                name != _JOURNAL
                and name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)
            ):
                names.append(name)
        return names

    def _load_journal(self) -> None:
        own = os.path.basename(self._journal_path)
        self._journal_end = 0
        known = set(self.config_keys())
        origins: dict[tuple[str, int], str] = {}
        for name in self._journal_file_names(self.path):
            file_path = os.path.join(self.path, name)
            try:
                with open(file_path, "rb") as handle:
                    data = handle.read()
            except FileNotFoundError:
                continue
            offset = 0
            lines = data.split(b"\n")
            body, tail = lines[:-1], lines[-1]
            local: set[tuple[str, int]] = set()
            for number, line in enumerate(body, start=1):
                if not line:
                    offset += 1
                    continue
                try:
                    raw = json.loads(line)
                    record = TrialRecord(
                        index=int(raw["t"]),
                        accuracy=float(raw["a"]),
                        flips=int(raw["f"]),
                        sites=tuple(
                            (int(layer), int(bit)) for layer, bit in raw["s"]
                        ),
                        seconds=float(raw.get("sec", 0.0)),
                    )
                    key = str(raw["c"])
                except (ValueError, KeyError, TypeError) as error:
                    raise StoreError(
                        f"{file_path!r}: corrupt record on line "
                        f"{number}: {error}"
                    )
                if key not in known:
                    raise StoreError(
                        f"{file_path!r}: line {number} references "
                        f"config {key!r} absent from the manifest"
                    )
                if (key, record.index) in local:
                    # One writer journaling a trial twice is corruption;
                    # only *cross-file* duplicates can be honest re-runs.
                    raise StoreError(
                        f"{file_path!r}: duplicate record for "
                        f"config {key!r} trial {record.index}"
                    )
                local.add((key, record.index))
                per_config = self._records.setdefault(key, {})
                prior = per_config.get(record.index)
                if prior is None:
                    per_config[record.index] = record
                    origins[(key, record.index)] = name
                elif prior != record:
                    raise StoreError(
                        f"{file_path!r}: config {key!r} trial "
                        f"{record.index} conflicts with the copy in "
                        f"{origins[(key, record.index)]!r} "
                        f"({prior.accuracy!r} vs {record.accuracy!r})"
                    )
                offset += len(line) + 1
            if tail and name == own:
                _logger.warning(
                    "%s: ignoring torn trailing record (%d bytes) — the "
                    "previous run crashed mid-write; it will be truncated "
                    "on the next append",
                    file_path,
                    len(tail),
                )
            elif tail:
                # Another writer's tail may simply be an append in
                # flight; its owner truncates real torn tails itself.
                _logger.debug(
                    "%s: ignoring %d trailing bytes (torn or in-flight)",
                    file_path,
                    len(tail),
                )
            if name == own:
                self._journal_end = offset

    def _append(self, key: str, record: TrialRecord) -> None:
        writer = self._writer
        if writer is None:
            # A fresh segment writer's file doesn't exist yet.
            with open(self._journal_path, "ab"):
                pass
            # Reclaim any torn tail before the first append of this
            # session, so the journal stays a clean sequence of lines.
            writer = open(self._journal_path, "r+b")
            writer.seek(self._journal_end)
            writer.truncate()
            self._writer = writer
        line = exact_json_dumps(
            {
                "c": key,
                "t": record.index,
                "a": record.accuracy,
                "f": record.flips,
                "s": [[layer, bit] for layer, bit in record.sites],
                "sec": record.seconds,
            }
        )
        payload = line.encode("utf-8") + b"\n"
        writer.write(payload)
        writer.flush()
        self._journal_end += len(payload)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The campaign-facing journal surface
    # ------------------------------------------------------------------
    def open_config(self, fault_model: Describable, tag: str = "") -> str:
        """Register one fault configuration (idempotent); returns its key."""
        spec = fault_model.describe()
        key = _config_key(tag, spec)
        for entry in self._configs:
            if entry["key"] == key:
                return key
        self._configs.append(
            {"key": key, "tag": tag, "spec": spec, "converged_at": None}
        )
        self._write_manifest()
        return key

    def register_configs(
        self, fault_models: Iterable[Describable], tag: str = ""
    ) -> list[str]:
        """Register a batch of configurations with one manifest write.

        Idempotent, like :meth:`open_config`.  The coordination layer
        (:mod:`repro.coord`) relies on this to keep the manifest
        single-writer: the store *creator* registers the whole sweep up
        front, joining workers only ever read it — no worker races
        another's atomic manifest rewrite.
        """
        keys: list[str] = []
        registered = {str(entry["key"]) for entry in self._configs}
        added = False
        for fault_model in fault_models:
            spec = fault_model.describe()
            key = _config_key(tag, spec)
            keys.append(key)
            if key in registered:
                continue
            self._configs.append(
                {"key": key, "tag": tag, "spec": spec, "converged_at": None}
            )
            registered.add(key)
            added = True
        if added:
            self._write_manifest()
        return keys

    @classmethod
    def scan_progress(cls, path: str | os.PathLike[str]) -> JournalProgress:
        """Scan (config, trial) coverage across every journal file.

        Reads only keys and indices — no records, no conflict checking
        (:meth:`open` stays the authority on corruption) — and tolerates
        each file's unterminated last line, so a coordination loop can
        poll progress cheaply while other workers are mid-append.
        """
        path = os.fspath(path)
        if not cls.exists(path):
            raise StoreError(f"{path!r} is not a campaign store (no {_MANIFEST})")
        indices: dict[str, set[int]] = {}
        segments: dict[str, int] = {}
        for name in cls._journal_file_names(path):
            file_path = os.path.join(path, name)
            try:
                with open(file_path, "rb") as handle:
                    data = handle.read()
            except FileNotFoundError:
                continue
            writer = ""
            if name != _JOURNAL:
                writer = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            count = 0
            for line in data.split(b"\n")[:-1]:
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    key = str(raw["c"])
                    index = int(raw["t"])
                except (ValueError, KeyError, TypeError):
                    # A torn line mid-file would be real corruption, but
                    # this scanner is a progress probe: leave diagnosis
                    # to open() and just don't count the line.
                    continue
                indices.setdefault(key, set()).add(index)
                count += 1
            segments[writer] = count
        return JournalProgress(indices=indices, segments=segments)

    def journaled(self, key: str) -> dict[int, TrialOutcome]:
        """Already-recorded outcomes of one config, by trial index."""
        return {
            index: record.outcome()
            for index, record in self._records.get(key, {}).items()
        }

    def records(self, key: str) -> dict[int, TrialRecord]:
        """Full journal records (with sites) of one config.

        Always in trial-index order, regardless of journal append order
        — a merged shard store and a straight run therefore feed
        downstream aggregation (the atlas's order-sensitive float
        reductions included) identical streams.
        """
        return dict(sorted(self._records.get(key, {}).items()))

    def converged_at(self, key: str) -> int | None:
        value = self.config_entry(key).get("converged_at")
        return None if value is None else int(value)

    def mark_converged(self, key: str, trials: int) -> None:
        """Record an ``EarlyStop`` decision: the config is done after
        ``trials`` trials, and resumes must not re-open it."""
        entry = self.config_entry(key)
        if entry.get("converged_at") is not None:
            return
        entry["converged_at"] = int(trials)
        self._write_manifest()

    def remaining_budget(self) -> int | None:
        """New records this session may still journal (None = no limit).

        Campaigns consult this before dispatching work, so a pooled
        executor never evaluates trials the budget forbids journaling.
        """
        if self.max_new_records is None:
            return None
        return max(0, self.max_new_records - self.appended)

    def record(
        self,
        key: str,
        outcome: TrialOutcome,
        sites: Iterable[tuple[int, int]],
    ) -> None:
        """Journal one fresh trial outcome (budget-checked, flushed)."""
        if self.max_new_records is not None and self.appended >= self.max_new_records:
            raise CampaignInterrupted(
                f"store {self.path!r} reached its new-trial budget "
                f"({self.max_new_records}); resume to continue"
            )
        self.config_entry(key)  # raises on unknown config
        per_config = self._records.setdefault(key, {})
        if outcome.index in per_config:
            raise ConfigurationError(
                f"trial {outcome.index} of config {key!r} is already journaled"
            )
        record = TrialRecord(
            index=int(outcome.index),
            accuracy=float(outcome.accuracy),
            flips=int(outcome.flips),
            sites=tuple((int(layer), int(bit)) for layer, bit in sites),
            seconds=float(outcome.seconds),
        )
        self._append(key, record)
        per_config[record.index] = record
        self.appended += 1
        # Side-band progress signal for `repro campaign status --follow`
        # and the process registry; never touches the journal bytes.
        _TRIALS_JOURNALED.inc(1)

    # ------------------------------------------------------------------
    # Completeness and results
    # ------------------------------------------------------------------
    def expected_indices(self, key: str) -> list[int]:
        """The trial indices this store is responsible for journaling."""
        converged = self.converged_at(key)
        if converged is not None:
            return list(range(converged))
        if self.shard is not None:
            index, count = self.shard
            return list(range(index, self.trials, count))
        return list(range(self.trials))

    def missing_indices(self, key: str) -> list[int]:
        have = self._records.get(key, {})
        return [t for t in self.expected_indices(key) if t not in have]

    def complete(self, key: str) -> bool:
        return not self.missing_indices(key)

    def result(self, key: str) -> "CampaignResult":
        """Rebuild one config's :class:`CampaignResult` from the journal.

        Exact by construction: accuracies/flips are the journaled
        float64/int64 values in trial-index order.
        """
        from repro.fault.campaign import CampaignResult

        missing = self.missing_indices(key)
        if missing:
            raise StoreError(
                f"config {key!r} is incomplete: {len(missing)} of "
                f"{len(self.expected_indices(key))} trials missing "
                "(resume the campaign, or merge the other shards, first)"
            )
        records = self._records.get(key, {})
        order = self.expected_indices(key)
        return CampaignResult(
            StoredFaultModel(str(self.config_entry(key)["spec"])),
            np.asarray([records[t].accuracy for t in order], dtype=np.float64),
            np.asarray([records[t].flips for t in order], dtype=np.int64),
        )

    def status(self) -> dict[str, object]:
        """JSON-ready progress summary (``repro campaign status``)."""
        configs: list[dict[str, object]] = []
        total_done = 0
        total_expected = 0
        seconds = 0.0
        for entry in self._configs:
            key = str(entry["key"])
            records = self._records.get(key, {})
            expected = self.expected_indices(key)
            done = sum(1 for t in expected if t in records)
            total_done += done
            total_expected += len(expected)
            seconds += sum(r.seconds for r in records.values())
            configs.append(
                {
                    "key": key,
                    "tag": str(entry["tag"]),
                    "spec": str(entry["spec"]),
                    "journaled": done,
                    "expected": len(expected),
                    "converged_at": entry.get("converged_at"),
                    "mean_accuracy": (
                        float(
                            np.mean(
                                [records[t].accuracy for t in expected if t in records]
                            )
                        )
                        if done
                        else None
                    ),
                }
            )
        journaled_total = sum(len(r) for r in self._records.values())
        return {
            "path": self.path,
            "seed": self.seed,
            "trials": self.trials,
            "shard": list(self.shard) if self.shard else None,
            "configs": configs,
            "journaled": total_done,
            "expected": total_expected,
            "complete": total_done >= total_expected,
            "trial_seconds": seconds,
            "mean_trial_seconds": (
                seconds / journaled_total if journaled_total else None
            ),
        }

    # ------------------------------------------------------------------
    # Merging shard stores
    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls,
        path: str | os.PathLike[str],
        sources: Sequence["CampaignStore | str | os.PathLike[str]"],
    ) -> "CampaignStore":
        """Fold shard stores into one unsharded store at ``path``.

        Sources must share seed, trial count, fingerprint, and layer
        table (their shard slices may — should — differ).  Records are
        unioned; a (config, trial) pair journaled by two sources must
        agree exactly, so double-running a slice is caught rather than
        silently double-counted.
        """
        if not sources:
            raise ConfigurationError("merge needs at least one source store")
        stores = [
            source if isinstance(source, cls) else cls.open(source)
            for source in sources
        ]
        base = stores[0].identity
        base.pop("shard")
        for store in stores[1:]:
            theirs = store.identity
            theirs.pop("shard")
            if theirs != base:
                raise StoreError(
                    f"cannot merge {store.path!r}: campaign identity "
                    f"differs from {stores[0].path!r} "
                    f"(mismatched: {', '.join(_mismatched_fields(base, theirs))})"
                )
        identity = {**base, "shard": None}
        merged = cls.create(path, identity, meta=stores[0].meta)
        for store in stores:
            for entry in store._configs:
                key = str(entry["key"])
                try:
                    existing = merged.config_entry(key)
                except StoreError:
                    merged._configs.append(
                        {
                            "key": key,
                            "tag": entry["tag"],
                            "spec": entry["spec"],
                            "converged_at": entry.get("converged_at"),
                        }
                    )
                    continue
                theirs = entry.get("converged_at")
                if theirs is not None:
                    if (
                        existing["converged_at"] is not None
                        and existing["converged_at"] != theirs
                    ):
                        raise StoreError(
                            f"config {key!r}: sources disagree on the "
                            f"EarlyStop convergence point "
                            f"({existing['converged_at']} vs {theirs})"
                        )
                    existing["converged_at"] = theirs
        # Persist the unioned config table before journaling any record:
        # a crash mid-merge then leaves a valid (incomplete) store, never
        # a journal referencing configs the manifest doesn't know — the
        # same write ordering the run path's open_config guarantees.
        merged._write_manifest()
        for store in stores:
            for key, records in store._records.items():
                merged_records = merged._records.setdefault(key, {})
                for index, record in sorted(records.items()):
                    prior = merged_records.get(index)
                    if prior is not None:
                        if prior != record:
                            raise StoreError(
                                f"config {key!r} trial {index}: sources "
                                "journaled conflicting outcomes "
                                f"({prior.accuracy!r} vs {record.accuracy!r})"
                            )
                        continue
                    merged._append(key, record)
                    merged_records[index] = record
        return merged
