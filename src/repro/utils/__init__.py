"""Shared utilities: seeded RNG management, timing, serialization, logging."""

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import derive_seed, new_rng, spawn_rngs
from repro.utils.serialization import load_state, save_state
from repro.utils.timing import Timer, time_callable

__all__ = [
    "Timer",
    "derive_seed",
    "get_logger",
    "load_state",
    "new_rng",
    "save_state",
    "set_verbosity",
    "spawn_rngs",
    "time_callable",
]
