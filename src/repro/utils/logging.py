"""Minimal logging facade.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace; experiments default to INFO while unit tests stay
quiet.  Kept deliberately tiny — experiments print their result tables
through :mod:`repro.eval.reporting` instead of the log stream.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "set_verbosity"]

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: %(message)s"))
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger below the ``repro`` namespace."""
    _ensure_configured()
    if not name:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int | str) -> None:
    """Set the library-wide log level (e.g. ``logging.INFO`` or ``"INFO"``)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)
