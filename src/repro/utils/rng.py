"""Deterministic random number generation helpers.

Every stochastic component in the library (data synthesis, weight init,
fault-site sampling, augmentation) takes an explicit seed or
``numpy.random.Generator``.  These helpers centralise how seeds are derived
so that campaigns are reproducible bit-for-bit, which matters when
comparing protection schemes under identical fault patterns.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "new_rng", "spawn_rngs"]

_SEED_MODULUS = 2**63 - 1


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged so
    callers can thread one generator through a pipeline), or ``None`` for
    OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a stable child seed from a base seed and labels.

    Uses SHA-256 over the textual representation, so the mapping is stable
    across processes and platforms (unlike ``hash()``).

    >>> derive_seed(0, "fault", 3) == derive_seed(0, "fault", 3)
    True
    >>> derive_seed(0, "fault", 3) != derive_seed(0, "fault", 4)
    True
    """
    text = repr((int(base_seed), components)).encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_MODULUS


def spawn_rngs(seed: int, count: int, label: str = "") -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [new_rng(derive_seed(seed, label, i)) for i in range(count)]
