"""State-dict persistence for models and optimisers.

States are flat ``{name: ndarray}`` mappings (see
:meth:`repro.nn.Module.state_dict`) saved as compressed ``.npz`` archives.
Names may contain dots; numpy handles arbitrary key strings.
"""

from __future__ import annotations

import os
from collections.abc import Mapping

import numpy as np

__all__ = ["load_state", "save_state"]


def save_state(path: str | os.PathLike, state: Mapping[str, np.ndarray]) -> str:
    """Save a flat state mapping; returns the path actually written.

    ``np.savez_compressed`` silently appends ``.npz`` when the suffix is
    missing, so the written file can differ from ``path`` — callers that
    report or reuse the location must use the returned path.
    """
    arrays = {}
    for name, value in state.items():
        if not isinstance(name, str):
            raise TypeError(f"state keys must be str, got {type(name).__name__}")
        arrays[name] = np.asarray(value)
    path = os.fspath(path)
    written = path if path.endswith(".npz") else f"{path}.npz"
    np.savez_compressed(path, **arrays)
    return written


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a flat state mapping saved by :func:`save_state`."""
    path = os.fspath(path)
    if not path.endswith(".npz") and not os.path.exists(path):
        path = f"{path}.npz"
    with np.load(path) as archive:
        return {name: archive[name].copy() for name in archive.files}
