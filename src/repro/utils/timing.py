"""Wall-clock timing helpers used by the overhead experiments (Table I)."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Timer", "time_callable"]


@dataclass
class Timer:
    """Accumulating context-manager timer.

    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "Timer re-entered without exiting; Timer is not re-entrant "
                "(use one Timer per nesting level)"
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without being entered")
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap duration in seconds (0.0 if no laps recorded)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


def time_callable(
    fn: Callable[[], object],
    repeats: int = 5,
    warmup: int = 1,
) -> dict[str, float]:
    """Time ``fn`` over several repeats after warmup calls.

    Returns a dict with ``mean``, ``min``, ``max`` and ``total`` seconds.
    The minimum is the most robust single statistic on a noisy shared host,
    so Table I reports both mean and min.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    laps = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - start)
    return {
        "mean": sum(laps) / len(laps),
        "min": min(laps),
        "max": max(laps),
        "total": sum(laps),
    }
