"""Engine mechanics: discovery, suppression, baseline, reporters."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    LintError,
    lint_paths,
    lint_text,
    render_json,
    render_text,
)
from repro.analysis.baseline import BaselineEntry, line_hash
from repro.analysis.suppress import suppressed_rules
from repro.errors import ReproError

BAD_TRAINING = "def f(model):\n    model.training = False\n"


def _write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
class TestDiscovery:
    def test_walks_directories_and_skips_pycache(self, tmp_path, monkeypatch):
        _write_tree(
            tmp_path,
            {
                "src/repro/serve/a.py": BAD_TRAINING,
                "src/repro/serve/__pycache__/b.py": BAD_TRAINING,
                "src/repro/serve/notes.txt": "model.training = False",
            },
        )
        monkeypatch.chdir(tmp_path)
        result = lint_paths(["src"])
        assert result.files == 1
        assert [f.rule for f in result.findings] == ["RPL002"]
        assert result.findings[0].path == "src/repro/serve/a.py"

    def test_missing_path_is_an_error_not_a_crash(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = lint_paths(["no-such-dir"])
        assert result.findings == []
        assert [e.message for e in result.errors] == ["no such file or directory"]
        assert result.exit_code() == 2

    def test_syntax_error_becomes_error_record(self, tmp_path, monkeypatch):
        _write_tree(
            tmp_path,
            {
                "src/repro/serve/broken.py": "def f(:\n",
                "src/repro/serve/ok_but_bad.py": BAD_TRAINING,
            },
        )
        monkeypatch.chdir(tmp_path)
        result = lint_paths(["src"])
        # The broken file is reported with its line, and the findings in
        # the *other* file still surface.
        assert len(result.errors) == 1
        error = result.errors[0]
        assert error.path == "src/repro/serve/broken.py"
        assert "syntax error" in error.message
        assert error.line >= 1
        assert [f.rule for f in result.findings] == ["RPL002"]
        assert result.exit_code() == 2


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    def test_trailing_comment_applies_to_its_line(self):
        source = "x = 1\ny = 2  # repro-lint: disable=RPL002\n"
        assert suppressed_rules(source) == {2: frozenset({"RPL002"})}

    def test_standalone_comment_applies_to_next_line(self):
        source = "# repro-lint: disable=RPL002\ny = 2\n"
        assert suppressed_rules(source)[2] == frozenset({"RPL002"})

    def test_multiple_rule_ids(self):
        source = "y = 2  # repro-lint: disable=RPL001, RPL004\n"
        assert suppressed_rules(source)[1] == frozenset({"RPL001", "RPL004"})

    def test_suppression_is_per_rule(self):
        # A disable for a different rule does not silence the finding.
        src = "def f(model):\n    model.training = False  # repro-lint: disable=RPL001\n"
        assert [f.rule for f in lint_text(src, "src/repro/serve/foo.py")] == [
            "RPL002"
        ]

    def test_suppressed_findings_are_counted(self, tmp_path, monkeypatch):
        _write_tree(
            tmp_path,
            {
                "src/repro/serve/a.py": (
                    "def f(model):\n"
                    "    model.training = False  # repro-lint: disable=RPL002\n"
                ),
            },
        )
        monkeypatch.chdir(tmp_path)
        result = lint_paths(["src"])
        assert result.findings == []
        assert result.suppressed == 1
        assert result.exit_code() == 0


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_baselined_finding_does_not_fail(self, tmp_path, monkeypatch):
        _write_tree(tmp_path, {"src/repro/serve/a.py": BAD_TRAINING})
        monkeypatch.chdir(tmp_path)
        first = lint_paths(["src"])
        Baseline.write(
            tmp_path / "baseline.json",
            first.unfiltered,
            notes={("RPL002", "src/repro/serve/a.py"): "audited"},
        )
        second = lint_paths(["src"], baseline=tmp_path / "baseline.json")
        assert second.findings == []
        assert second.baselined == 1
        assert second.exit_code() == 0

    def test_edited_line_goes_stale_and_fires_again(self, tmp_path, monkeypatch):
        target = tmp_path / "src/repro/serve/a.py"
        _write_tree(tmp_path, {"src/repro/serve/a.py": BAD_TRAINING})
        monkeypatch.chdir(tmp_path)
        Baseline.write(tmp_path / "baseline.json", lint_paths(["src"]).unfiltered)
        # Change the offending line: the hash no longer matches, so the
        # finding fires and the entry is reported stale.
        target.write_text("def f(model):\n    model.training = True\n")
        result = lint_paths(["src"], baseline=tmp_path / "baseline.json")
        assert [f.rule for f in result.findings] == ["RPL002"]
        assert result.baselined == 0
        assert len(result.baseline.unused()) == 1
        assert result.exit_code() == 1

    def test_line_number_drift_does_not_go_stale(self, tmp_path, monkeypatch):
        target = tmp_path / "src/repro/serve/a.py"
        _write_tree(tmp_path, {"src/repro/serve/a.py": BAD_TRAINING})
        monkeypatch.chdir(tmp_path)
        Baseline.write(tmp_path / "baseline.json", lint_paths(["src"]).unfiltered)
        # Prepend unrelated lines: same content, new line number.
        target.write_text("import os\n\n\n" + BAD_TRAINING)
        result = lint_paths(["src"], baseline=tmp_path / "baseline.json")
        assert result.findings == []
        assert result.baselined == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == []

    def test_corrupt_baseline_raises_repro_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            Baseline.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ReproError):
            Baseline.load(path)

    def test_write_round_trips_notes(self, tmp_path):
        entry_line = "    model.training = False"
        finding_like = lint_text(
            "def f(model):\n" + entry_line + "\n", "src/repro/serve/a.py"
        )[0]
        Baseline.write(
            tmp_path / "b.json",
            [(finding_like, entry_line)],
            notes={("RPL002", "src/repro/serve/a.py"): "why not"},
        )
        loaded = Baseline.load(tmp_path / "b.json")
        assert loaded.entries == [
            BaselineEntry(
                rule="RPL002",
                path="src/repro/serve/a.py",
                line=2,
                hash=line_hash(entry_line),
                note="why not",
            )
        ]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _result(self, tmp_path, monkeypatch):
        _write_tree(
            tmp_path,
            {
                "src/repro/serve/a.py": BAD_TRAINING,
                "src/repro/serve/broken.py": "def f(:\n",
            },
        )
        monkeypatch.chdir(tmp_path)
        return lint_paths(["src"])

    def test_text_report_is_clickable(self, tmp_path, monkeypatch):
        text = render_text(self._result(tmp_path, monkeypatch))
        assert "src/repro/serve/a.py:2:5: RPL002" in text
        assert "src/repro/serve/broken.py:1: error: syntax error" in text
        assert "1 finding in" in text
        assert "1 unparsable" in text

    def test_json_schema(self, tmp_path, monkeypatch):
        payload = json.loads(render_json(self._result(tmp_path, monkeypatch)))
        assert payload["version"] == 1
        assert payload["tool"] == "repro-lint"
        assert set(payload["rules"]) == {
            f"RPL{i:03d}" for i in range(1, 11)
        }
        assert payload["files"] == 2  # read files, parsable or not
        (finding,) = payload["findings"]
        assert finding == {
            "rule": "RPL002",
            "path": "src/repro/serve/a.py",
            "line": 2,
            "col": 5,
            "message": finding["message"],
        }
        (error,) = payload["errors"]
        assert error["path"] == "src/repro/serve/broken.py"
        assert payload["exit_code"] == 2

    def test_clean_run_renders_zero_summary(self, tmp_path, monkeypatch):
        _write_tree(tmp_path, {"src/repro/serve/a.py": "x = 1\n"})
        monkeypatch.chdir(tmp_path)
        result = lint_paths(["src"])
        assert result.clean
        assert "0 findings in 1 files" in render_text(result)
        assert json.loads(render_json(result))["exit_code"] == 0
