"""Per-rule good/bad fixtures driven through :func:`lint_text`.

Each snippet is linted under a virtual path so rule scoping behaves
exactly as it would for the real tree ("src/repro/store/x.py" gets the
store rules, and so on) without touching the filesystem.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import lint_text


def rules_in(source: str, path: str) -> list[str]:
    return [f.rule for f in lint_text(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# RPL001 — raw param.data writes
# ----------------------------------------------------------------------
class TestRPL001:
    def test_flags_raw_rebind_outside_whitelist(self):
        src = """
            def step(param, update):
                param.data = param.data - update
        """
        assert rules_in(src, "src/repro/optim/foo.py") == ["RPL001"]

    def test_flags_augmented_assignment(self):
        src = """
            def step(param, update):
                param.data -= update
        """
        assert rules_in(src, "src/repro/core/foo.py") == ["RPL001"]

    def test_whitelists_module_and_injector(self):
        src = """
            def load(param, value):
                param.data = value
        """
        assert rules_in(src, "src/repro/nn/module.py") == []
        assert rules_in(src, "src/repro/fault/injector.py") == []

    def test_self_data_is_not_a_parameter_write(self):
        src = """
            class Record:
                def __init__(self, data):
                    self.data = data
        """
        assert rules_in(src, "src/repro/eval/foo.py") == []

    def test_subscript_writes_not_flagged(self):
        # In-place element writes are the documented plan.refresh() edge,
        # and `result.data[key] = row` dicts abound in eval/; the rule
        # only polices whole-array rebinds.
        src = """
            def fill(result, key, row):
                result.data[key] = row
        """
        assert rules_in(src, "src/repro/eval/foo.py") == []

    def test_inline_disable_suppresses(self):
        src = """
            def quantize_all(param, value):
                param.data = value  # repro-lint: disable=RPL001
        """
        assert rules_in(src, "src/repro/quant/foo.py") == []


# ----------------------------------------------------------------------
# RPL002 — direct .training assignment
# ----------------------------------------------------------------------
class TestRPL002:
    def test_flags_direct_assignment(self):
        src = """
            def serve(model):
                model.training = False
        """
        assert "RPL002" in rules_in(src, "src/repro/serve/foo.py")

    def test_applies_to_tests_too(self):
        src = """
            def test_something(model):
                model.training = True
        """
        assert "RPL002" in rules_in(src, "tests/serve/test_foo.py")

    def test_property_setter_in_module_py_exempt(self):
        src = """
            class Module:
                def train(self, mode=True):
                    self.training = mode
        """
        assert rules_in(src, "src/repro/nn/module.py") == []

    def test_reading_training_is_fine(self):
        src = """
            def mode(model):
                return "train" if model.training else "eval"
        """
        assert rules_in(src, "src/repro/serve/foo.py") == []


# ----------------------------------------------------------------------
# RPL003 — raw GEMM in runtime/
# ----------------------------------------------------------------------
class TestRPL003:
    def test_flags_np_dot_and_matmul_operator(self):
        src = """
            import numpy as np

            def forward(a, b, c):
                x = np.dot(a, b)
                return x @ c
        """
        assert rules_in(src, "src/repro/runtime/foo.py") == ["RPL003", "RPL003"]

    def test_flags_einsum(self):
        src = """
            import numpy as np

            def forward(a, b):
                return np.einsum("ij,jk->ik", a, b)
        """
        assert rules_in(src, "src/repro/runtime/foo.py") == ["RPL003"]

    def test_kernels_module_is_the_approved_home(self):
        src = """
            import numpy as np

            def gemm(a, b):
                return np.dot(a, b)
        """
        assert rules_in(src, "src/repro/runtime/kernels.py") == []

    def test_outside_runtime_unconstrained(self):
        src = """
            import numpy as np

            def loss(a, b):
                return a @ b
        """
        assert rules_in(src, "src/repro/nn/linear.py") == []


# ----------------------------------------------------------------------
# RPL004 — nondeterminism on journaled paths
# ----------------------------------------------------------------------
class TestRPL004:
    def test_flags_wall_clock(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        # RPL009 (raw clock read) fires on the same call.
        assert rules_in(src, "src/repro/store/foo.py") == ["RPL004", "RPL009"]

    def test_flags_stdlib_random_import_and_call(self):
        src = """
            import random

            def pick(items):
                return random.choice(items)
        """
        assert rules_in(src, "src/repro/fault/foo.py") == ["RPL004", "RPL004"]

    def test_flags_unseeded_default_rng(self):
        src = """
            import numpy as np

            def rng():
                return np.random.default_rng()
        """
        assert rules_in(src, "src/repro/fault/foo.py") == ["RPL004"]

    def test_seeded_default_rng_is_fine(self):
        src = """
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_flags_set_iteration(self):
        src = """
            def dump(names):
                for name in set(names):
                    yield name
                return [n for n in {1, 2, 3}]
        """
        assert rules_in(src, "src/repro/store/foo.py") == ["RPL004", "RPL004"]

    def test_sorted_set_is_fine(self):
        src = """
            def dump(names):
                for name in sorted(set(names)):
                    yield name
        """
        assert rules_in(src, "src/repro/store/foo.py") == []

    def test_wall_clock_outside_journaled_paths_is_not_rpl004(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        # Only the raw-timing rule fires outside fault/ and store/.
        assert rules_in(src, "src/repro/core/foo.py") == ["RPL009"]

    def test_perf_counter_is_fine(self):
        src = """
            import time

            def tick():
                return time.perf_counter()
        """
        assert "RPL004" not in rules_in(src, "src/repro/fault/foo.py")

    def test_coord_is_a_journaled_path_too(self):
        # PR 10: lease staleness must come from fs_now (filesystem
        # clock), never a local wall-clock read.
        src = """
            import time

            def age(mtime):
                return time.time() - mtime
        """
        assert rules_in(src, "src/repro/coord/lease.py") == [
            "RPL004",
            "RPL009",
        ]
        src = """
            def drain(workers):
                return [w for w in set(workers)]
        """
        assert rules_in(src, "src/repro/coord/scheduler.py") == ["RPL004"]


# ----------------------------------------------------------------------
# RPL005 — raw json in store/
# ----------------------------------------------------------------------
class TestRPL005:
    def test_flags_json_dump_and_dumps(self):
        src = """
            import json

            def save(payload, handle):
                json.dump(payload, handle)
                return json.dumps(payload)
        """
        assert rules_in(src, "src/repro/store/foo.py") == ["RPL005", "RPL005"]

    def test_encoding_module_exempt(self):
        src = """
            import json

            def exact_json_dumps(payload):
                return json.dumps(payload, allow_nan=False)
        """
        assert rules_in(src, "src/repro/store/encoding.py") == []

    def test_json_loads_is_fine(self):
        src = """
            import json

            def load(line):
                return json.loads(line)
        """
        assert rules_in(src, "src/repro/store/foo.py") == []

    def test_outside_store_unconstrained(self):
        src = """
            import json

            def render(payload):
                return json.dumps(payload)
        """
        assert rules_in(src, "src/repro/serve/foo.py") == []


# ----------------------------------------------------------------------
# RPL006 — import layering
# ----------------------------------------------------------------------
class TestRPL006:
    def test_fault_must_not_import_store(self):
        src = """
            from repro.store import CampaignStore
        """
        assert rules_in(src, "src/repro/fault/foo.py") == ["RPL006"]

    def test_nn_must_not_import_runtime(self):
        src = """
            import repro.runtime
        """
        assert rules_in(src, "src/repro/nn/foo.py") == ["RPL006"]

    def test_declared_edges_pass(self):
        src = """
            from repro.errors import ReproError
            from repro.nn.module import Module
        """
        assert rules_in(src, "src/repro/optim/foo.py") == []

    def test_type_checking_imports_exempt(self):
        src = """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.store import CampaignStore
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_relative_imports_exempt(self):
        src = """
            from .parallel import TrialOutcome
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_cli_may_import_anything(self):
        src = """
            from repro.store import CampaignStore
            from repro.serve.http import ReproServer
        """
        assert rules_in(src, "src/repro/cli/foo.py") == []

    def test_coord_sits_above_store_and_serve(self):
        src = """
            from repro.store import CampaignStore
            from repro.serve.routes import Router
        """
        assert rules_in(src, "src/repro/coord/foo.py") == []

    def test_coord_must_not_import_runtime_and_store_not_coord(self):
        src = """
            from repro.runtime.plan import compile_model
        """
        assert rules_in(src, "src/repro/coord/foo.py") == ["RPL006"]
        src = """
            from repro.coord import WorkerLease
        """
        assert rules_in(src, "src/repro/store/foo.py") == ["RPL006"]


# ----------------------------------------------------------------------
# RPL007 — unpicklable state without __getstate__
# ----------------------------------------------------------------------
class TestRPL007:
    def test_flags_lock_without_getstate(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        assert rules_in(src, "src/repro/serve/foo.py") == ["RPL007"]

    def test_flags_thread_and_executor(self):
        src = """
            import threading
            from concurrent.futures import ThreadPoolExecutor

            class Worker:
                def __init__(self):
                    self._thread = threading.Thread(target=self.run)

            class Pool:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(2)
        """
        assert rules_in(src, "src/repro/serve/foo.py") == ["RPL007", "RPL007"]

    def test_getstate_silences(self):
        src = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    state = dict(self.__dict__)
                    del state["_lock"]
                    return state
        """
        assert rules_in(src, "src/repro/serve/foo.py") == []

    def test_flags_compiled_plan_member(self):
        src = """
            from repro.runtime import compile_model

            class Holder:
                def __init__(self, model, shape):
                    self.plan = compile_model(model, shape)
        """
        assert rules_in(src, "src/repro/serve/foo.py") == ["RPL007"]

    def test_lock_outside_class_not_flagged(self):
        src = """
            import threading

            _lock = threading.Lock()
        """
        assert rules_in(src, "src/repro/serve/foo.py") == []


# ----------------------------------------------------------------------
# RPL008 — except block leaking injected faults
# ----------------------------------------------------------------------
class TestRPL008:
    def test_flags_swallowing_handler(self):
        src = """
            def trial(injector, evaluate):
                try:
                    injector.apply()
                    return evaluate()
                except Exception:
                    return None
        """
        assert rules_in(src, "src/repro/fault/foo.py") == ["RPL008"]

    def test_flip_bits_write_counts_as_fault_mutation(self):
        src = """
            def trial(param, evaluate):
                try:
                    param.data = flip_bits(param.data)  # repro-lint: disable=RPL001
                    return evaluate()
                except Exception:
                    return None
        """
        assert rules_in(src, "src/repro/fault/foo.py") == ["RPL008"]

    def test_reraise_is_compliant(self):
        src = """
            def trial(injector, evaluate):
                try:
                    injector.apply()
                    return evaluate()
                except Exception:
                    raise
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_restore_call_is_compliant(self):
        src = """
            def trial(injector, evaluate):
                try:
                    injector.apply()
                    return evaluate()
                except Exception:
                    injector.restore()
                    return None
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_finally_is_compliant(self):
        src = """
            def trial(injector, evaluate):
                try:
                    injector.apply()
                    return evaluate()
                except Exception:
                    return None
                finally:
                    injector.restore()
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []

    def test_plain_try_without_fault_mutation_unconstrained(self):
        src = """
            def load(path):
                try:
                    return open(path).read()
                except OSError:
                    return None
        """
        assert rules_in(src, "src/repro/fault/foo.py") == []


# ----------------------------------------------------------------------
# RPL009 — raw clock reads outside the observability layer
# ----------------------------------------------------------------------
class TestRPL009:
    def test_flags_every_clock_call(self):
        src = """
            import time

            def clocks():
                return (
                    time.time(),
                    time.perf_counter(),
                    time.monotonic(),
                    time.process_time(),
                )
        """
        assert rules_in(src, "src/repro/serve/foo.py") == ["RPL009"] * 4

    def test_flags_ns_variants(self):
        src = """
            import time

            def clocks():
                return time.monotonic_ns() + time.perf_counter_ns()
        """
        assert rules_in(src, "src/repro/core/foo.py") == ["RPL009", "RPL009"]

    def test_obs_package_is_the_funnel(self):
        src = """
            import time

            def now():
                return time.perf_counter()
        """
        assert rules_in(src, "src/repro/obs/trace.py") == []

    def test_utils_timing_is_the_funnel(self):
        src = """
            import time

            def lap():
                return time.perf_counter()
        """
        assert rules_in(src, "src/repro/utils/timing.py") == []

    def test_other_utils_modules_are_constrained(self):
        src = """
            import time

            def lap():
                return time.perf_counter()
        """
        assert rules_in(src, "src/repro/utils/rng.py") == ["RPL009"]

    def test_sleep_is_pacing_not_reading(self):
        src = """
            import time

            def wait():
                time.sleep(0.1)
        """
        assert rules_in(src, "src/repro/serve/foo.py") == []

    def test_inline_disable_suppresses(self):
        src = """
            import time

            def deadline():
                return time.monotonic()  # repro-lint: disable=RPL009
        """
        assert rules_in(src, "src/repro/cli/foo.py") == []


# ----------------------------------------------------------------------
# RPL010 — replica lanes never row-split the shared-weight GEMM
# ----------------------------------------------------------------------
class TestRPL010:
    def test_flags_subscripted_gemm_operand_in_kernels(self):
        src = """
            import numpy as np

            def lane(acts, weights, lane_index):
                return np.dot(acts[lane_index], weights)
        """
        assert "RPL010" in rules_in(src, "src/repro/runtime/kernels.py")

    def test_flags_sliced_matmul_operator(self):
        src = """
            def lane(acts, weights, i, j):
                return acts[i:j] @ weights
        """
        assert rules_in(src, "src/repro/runtime/kernels.py") == ["RPL010"]

    def test_flags_subscripted_out_target(self):
        src = """
            import numpy as np

            def lane(acts, weights, out, lane_index):
                np.matmul(acts, weights, out=out[lane_index])
        """
        assert "RPL010" in rules_in(src, "src/repro/runtime/plan.py")

    def test_flags_einsum_with_sliced_operand(self):
        src = """
            import numpy as np

            def lane(batch, weights, r):
                return np.einsum("bk,kn->bn", batch[r], weights)
        """
        assert "RPL010" in rules_in(src, "src/repro/runtime/kernels.py")

    def test_whole_array_gemm_is_clean(self):
        src = """
            import numpy as np

            def forward(acts, weights):
                return np.dot(acts, weights)
        """
        assert rules_in(src, "src/repro/runtime/kernels.py") == []

    def test_subscript_outside_runtime_is_not_this_rules_business(self):
        src = """
            import numpy as np

            def mix(a, b, i):
                return np.dot(a[i], b)
        """
        assert "RPL010" not in rules_in(src, "src/repro/eval/metrics.py")

    def test_subscript_in_non_gemm_call_is_clean(self):
        src = """
            import numpy as np

            def gather(weights, index):
                return np.take(weights[index], 0)
        """
        assert rules_in(src, "src/repro/runtime/kernels.py") == []
