"""The lint engine runs over this repository itself and stays clean.

This is the acceptance gate CI enforces: every invariant rule holds on
``src/`` and ``tests/``, modulo the committed, justified baseline.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture()
def repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    return REPO_ROOT


def test_repository_lints_clean(repo_root):
    result = lint_paths(["src", "tests"], baseline="lint-baseline.json")
    assert result.errors == []
    assert result.findings == [], "\n".join(
        f"{f.location}: {f.rule} {f.message}" for f in result.findings
    )
    # The committed baseline must be exactly the audited entries — the
    # optimizer rebinds plus the pre-obs raw-timing sites — nothing
    # stale, nothing silently grown.
    assert result.baseline.unused() == []
    assert result.baselined == 15
    assert result.files > 150


def test_baseline_entries_carry_justifications(repo_root):
    from repro.analysis.baseline import Baseline

    baseline = Baseline.load("lint-baseline.json")
    assert {(e.rule, e.path) for e in baseline.entries} == {
        ("RPL001", "src/repro/optim/adam.py"),
        ("RPL001", "src/repro/optim/sgd.py"),
        ("RPL009", "src/repro/core/post_training.py"),
        ("RPL009", "src/repro/core/training.py"),
        ("RPL009", "src/repro/fault/parallel.py"),
        ("RPL009", "src/repro/serve/batcher.py"),
        ("RPL009", "src/repro/serve/client.py"),
        ("RPL009", "src/repro/serve/http.py"),
    }
    for entry in baseline.entries:
        assert "Audited" in entry.note


def test_inserted_violation_is_caught(repo_root, tmp_path):
    # The acceptance probe: a deliberately reintroduced invariant
    # violation in a tree-shaped scratch dir must fail with the right ID.
    bad = tmp_path / "src" / "repro" / "serve" / "sneaky.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(model):\n    model.training = False\n")
    result = lint_paths([str(bad)])
    assert [f.rule for f in result.findings] == ["RPL002"]
    assert result.exit_code() == 1
