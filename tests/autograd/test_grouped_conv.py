"""Grouped / depthwise convolution: block-diagonal reference, gradchecks."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d, gradcheck
from repro.errors import ShapeError


def _data(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


def reference_grouped(x, weight, bias, stride, padding, groups):
    """Grouped conv as G independent plain convolutions (block diagonal)."""
    c = x.shape[1]
    out_channels = weight.shape[0]
    cg, og = c // groups, out_channels // groups
    parts = []
    for g in range(groups):
        xg = Tensor(x[:, g * cg : (g + 1) * cg])
        wg = Tensor(weight[g * og : (g + 1) * og])
        bg = None if bias is None else Tensor(bias[g * og : (g + 1) * og])
        parts.append(
            conv2d(xg, wg, bg, stride=stride, padding=padding).data
        )
    return np.concatenate(parts, axis=1)


class TestGroupedForward:
    @pytest.mark.parametrize("groups", [2, 3, 6])
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_matches_blockwise_reference(self, groups, stride, padding):
        x = _data((2, 6, 6, 6))
        weight = _data((6, 6 // groups, 3, 3), 1)
        bias = _data((6,), 2)
        out = conv2d(
            Tensor(x), Tensor(weight), Tensor(bias),
            stride=stride, padding=padding, groups=groups,
        )
        expected = reference_grouped(
            x, weight, bias, stride, padding, groups
        )
        np.testing.assert_allclose(out.data, expected, rtol=1e-5, atol=1e-7)

    def test_groups_one_unchanged(self):
        """groups=1 must be bit-identical to the ungrouped path."""
        x = _data((2, 3, 5, 5))
        weight = _data((4, 3, 3, 3), 1)
        plain = conv2d(Tensor(x), Tensor(weight), padding=1)
        grouped = conv2d(Tensor(x), Tensor(weight), padding=1, groups=1)
        np.testing.assert_array_equal(plain.data, grouped.data)

    def test_depthwise_is_per_channel(self):
        """groups == C: each output channel sees exactly one input channel."""
        x = np.zeros((1, 3, 4, 4))
        x[0, 1] = 1.0  # only channel 1 carries signal
        weight = np.ones((3, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(weight), padding=1, groups=3).data
        assert np.all(out[0, 0] == 0)
        assert np.all(out[0, 2] == 0)
        assert out[0, 1].max() > 0

    def test_shape_validation(self):
        x = Tensor(_data((1, 4, 4, 4)))
        with pytest.raises(ShapeError):
            conv2d(x, Tensor(_data((4, 4, 3, 3))), groups=2)  # needs (4,2,3,3)
        with pytest.raises(ShapeError):
            conv2d(x, Tensor(_data((3, 2, 3, 3))), groups=2)  # 3 % 2 != 0
        with pytest.raises(ShapeError):
            conv2d(x, Tensor(_data((4, 4, 3, 3))), groups=0)


class TestGroupedBackward:
    @pytest.mark.parametrize("groups", [2, 4])
    def test_gradcheck_input_and_weight(self, groups):
        x = _data((2, 4, 5, 5))
        weight = _data((4, 4 // groups, 3, 3), 1)
        bias = _data((4,), 2)
        assert gradcheck(
            lambda a, w, b: conv2d(a, w, b, stride=1, padding=1, groups=groups),
            [x, weight, bias],
        )

    def test_gradcheck_depthwise_strided(self):
        x = _data((1, 3, 6, 6))
        weight = _data((3, 1, 3, 3), 1)
        assert gradcheck(
            lambda a, w: conv2d(a, w, stride=2, padding=1, groups=3),
            [x, weight],
        )

    def test_gradcheck_no_bias(self):
        x = _data((1, 4, 4, 4))
        weight = _data((8, 2, 3, 3), 1)
        assert gradcheck(
            lambda a, w: conv2d(a, w, padding=1, groups=2),
            [x, weight],
        )


class TestConv2dModuleGroups:
    def test_weight_shape_and_forward(self):
        from repro import nn

        layer = nn.Conv2d(6, 6, 3, padding=1, groups=3, rng=0)
        assert layer.weight.shape == (6, 2, 3, 3)
        out = layer(Tensor(_data((2, 6, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 6, 8, 8)
        assert "groups=3" in repr(layer)

    def test_invalid_groups_rejected(self):
        from repro import nn

        with pytest.raises(ShapeError):
            nn.Conv2d(6, 6, 3, groups=4, rng=0)
        with pytest.raises(ShapeError):
            nn.Conv2d(6, 6, 3, groups=0, rng=0)
