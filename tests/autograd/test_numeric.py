"""The gradcheck oracle itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, numeric_gradient
from repro.autograd.function import Function, unbroadcast


class _WrongGradMul(Function):
    """Multiply whose backward is deliberately wrong (returns 2·correct)."""

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_out):
        a, b = self.saved
        return 2.0 * grad_out * b, 2.0 * grad_out * a


def test_gradcheck_passes_correct_op():
    rng = np.random.default_rng(0)
    assert gradcheck(lambda a, b: a * b, [rng.standard_normal(3), rng.standard_normal(3)])


def test_gradcheck_catches_wrong_gradient():
    rng = np.random.default_rng(0)
    with pytest.raises(AssertionError, match="gradient mismatch"):
        gradcheck(
            lambda a, b: _WrongGradMul.apply(a, b),
            [rng.standard_normal(3), rng.standard_normal(3)],
        )


def test_numeric_gradient_of_quadratic():
    def fn(arrays):
        return float((arrays[0] ** 2).sum())

    point = np.array([1.0, -2.0, 3.0])
    grad = numeric_gradient(fn, [point], which=0)
    np.testing.assert_allclose(grad, 2 * point, rtol=1e-5)


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)) is grad

    def test_sums_leading_axes(self):
        out = unbroadcast(np.ones((4, 3)), (3,))
        assert out.tolist() == [4.0, 4.0, 4.0]

    def test_sums_size_one_axes(self):
        out = unbroadcast(np.ones((4, 3)), (4, 1))
        assert out.shape == (4, 1)
        assert out.reshape(-1).tolist() == [3.0] * 4

    def test_scalar_target(self):
        out = unbroadcast(np.ones((2, 2)), ())
        assert out == 4.0
