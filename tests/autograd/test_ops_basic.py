"""Elementwise and matmul primitives: forward semantics + gradcheck."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, gradcheck, ops_basic
from repro.errors import ShapeError

SHAPES = [(3,), (2, 3), (2, 1, 4)]


def _data(shape, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(shape)
    if positive:
        values = np.abs(values) + 0.5
    return values


class TestForward:
    def test_add_broadcast(self):
        out = ops_basic.add(Tensor([[1.0], [2.0]]), Tensor([10.0, 20.0]))
        assert out.data.tolist() == [[11.0, 21.0], [12.0, 22.0]]

    def test_sub(self):
        out = ops_basic.sub(Tensor([3.0]), Tensor([1.0]))
        assert out.data.tolist() == [2.0]

    def test_scalar_operand_promotion(self):
        out = Tensor([1.0, 2.0]) * 3.0
        assert out.data.tolist() == [3.0, 6.0]

    def test_rsub_rdiv(self):
        x = Tensor([2.0])
        assert (10.0 - x).data.tolist() == [8.0]
        assert (10.0 / x).data.tolist() == [5.0]

    def test_neg(self):
        assert (-Tensor([1.0, -2.0])).data.tolist() == [-1.0, 2.0]

    def test_pow(self):
        assert (Tensor([2.0]) ** 3).data.tolist() == [8.0]

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        assert ops_basic.log(ops_basic.exp(x)).data == pytest.approx(
            x.data, abs=1e-6
        )

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        assert ops_basic.maximum(a, b).data.tolist() == [3.0, 5.0]
        assert ops_basic.minimum(a, b).data.tolist() == [1.0, 2.0]

    def test_where(self):
        out = ops_basic.where(
            np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0])
        )
        assert out.data.tolist() == [1.0, 2.0]

    def test_abs(self):
        assert ops_basic.abs(Tensor([-1.5, 2.0])).data.tolist() == [1.5, 2.0]

    def test_matmul_2d(self):
        a = _data((3, 4))
        b = _data((4, 2), seed=1)
        out = ops_basic.matmul(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a @ b, rtol=1e-5)

    def test_matmul_rejects_1d(self):
        with pytest.raises(ShapeError):
            ops_basic.matmul(Tensor([1.0]), Tensor([[1.0]]))


class TestGradients:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize(
        "op",
        [ops_basic.add, ops_basic.sub, ops_basic.mul, ops_basic.div],
        ids=["add", "sub", "mul", "div"],
    )
    def test_binary_ops(self, op, shape):
        a = _data(shape, 0)
        b = _data(shape, 1, positive=op is ops_basic.div)
        gradcheck(op, [a, b])

    def test_broadcast_gradients(self):
        gradcheck(ops_basic.mul, [_data((2, 3)), _data((3,), 1)])
        gradcheck(ops_basic.add, [_data((4, 1)), _data((1, 5), 1)])

    @pytest.mark.parametrize(
        "op,positive",
        [
            (ops_basic.neg, False),
            (ops_basic.exp, False),
            (ops_basic.log, True),
            (ops_basic.sqrt, True),
        ],
        ids=["neg", "exp", "log", "sqrt"],
    )
    def test_unary_ops(self, op, positive):
        gradcheck(op, [_data((2, 3), positive=positive)])

    def test_abs_away_from_zero(self):
        values = _data((3, 3))
        values[np.abs(values) < 0.2] = 0.5
        gradcheck(ops_basic.abs, [values])

    @pytest.mark.parametrize("exponent", [2.0, 3.0, -1.0, 0.5])
    def test_pow(self, exponent):
        gradcheck(lambda t: ops_basic.pow(t, exponent), [_data((4,), positive=True)])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        ops_basic.maximum(a, b).sum().backward()
        assert a.grad.tolist() == [0.0, 1.0]
        assert b.grad.tolist() == [1.0, 0.0]

    def test_maximum_tie_goes_to_first(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        ops_basic.maximum(a, b).sum().backward()
        assert a.grad.tolist() == [1.0]
        assert b.grad.tolist() == [0.0]

    def test_where_gradients(self):
        condition = np.array([True, False, True])
        gradcheck(
            lambda a, b: ops_basic.where(condition, a, b),
            [_data((3,)), _data((3,), 1)],
        )

    def test_matmul_2d(self):
        gradcheck(ops_basic.matmul, [_data((3, 4)), _data((4, 2), 1)])

    def test_matmul_batched(self):
        gradcheck(ops_basic.matmul, [_data((2, 3, 4)), _data((2, 4, 2), 1)])

    def test_matmul_broadcast_batch(self):
        gradcheck(ops_basic.matmul, [_data((2, 3, 4)), _data((4, 2), 1)])


class TestProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_add_commutes(self, seed):
        a = _data((3, 2), seed)
        b = _data((3, 2), seed + 1)
        left = ops_basic.add(Tensor(a), Tensor(b)).data
        right = ops_basic.add(Tensor(b), Tensor(a)).data
        np.testing.assert_array_equal(left, right)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mul_div_inverse(self, seed):
        a = _data((4,), seed)
        b = _data((4,), seed + 1, positive=True)
        roundtrip = ops_basic.div(ops_basic.mul(Tensor(a), Tensor(b)), Tensor(b))
        np.testing.assert_allclose(roundtrip.data, a, rtol=1e-5)
