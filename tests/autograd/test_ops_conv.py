"""Convolution and pooling: scipy reference forward, gradchecks, errors."""

import numpy as np
import pytest
from scipy.signal import correlate

from repro.autograd import Tensor, avg_pool2d, conv2d, gradcheck, max_pool2d
from repro.errors import ShapeError


def _data(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


def reference_conv2d(x, weight, bias, stride, padding):
    """Direct cross-correlation via scipy, for forward verification."""
    n, c, h, w = x.shape
    out_channels, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, out_channels, oh, ow))
    for i in range(n):
        for o in range(out_channels):
            acc = np.zeros((h + 2 * ph - kh + 1, w + 2 * pw - kw + 1))
            for ch in range(c):
                acc += correlate(padded[i, ch], weight[o, ch], mode="valid")
            out[i, o] = acc[::sh, ::sw]
            if bias is not None:
                out[i, o] += bias[o]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("padding", [0, 1])
    def test_matches_scipy(self, stride, padding):
        x = _data((2, 3, 6, 6))
        weight = _data((4, 3, 3, 3), 1)
        bias = _data((4,), 2)
        out = conv2d(Tensor(x), Tensor(weight), Tensor(bias),
                     stride=stride, padding=padding)
        expected = reference_conv2d(x, weight, bias, (stride, stride),
                                    (padding, padding))
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-6)

    def test_no_bias(self):
        x = _data((1, 2, 4, 4))
        weight = _data((3, 2, 3, 3), 1)
        out = conv2d(Tensor(x), Tensor(weight))
        expected = reference_conv2d(x, weight, None, (1, 1), (0, 0))
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-6)

    def test_rectangular_kernel(self):
        x = _data((1, 1, 5, 6))
        weight = _data((2, 1, 2, 3), 1)
        out = conv2d(Tensor(x), Tensor(weight))
        assert out.shape == (1, 2, 4, 4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError, match="channels"):
            conv2d(Tensor(_data((1, 3, 4, 4))), Tensor(_data((2, 2, 3, 3))))

    def test_too_small_input_raises(self):
        with pytest.raises(ShapeError, match="output size"):
            conv2d(Tensor(_data((1, 1, 2, 2))), Tensor(_data((1, 1, 3, 3))))

    def test_non_4d_raises(self):
        with pytest.raises(ShapeError, match="NCHW"):
            conv2d(Tensor(_data((3, 4))), Tensor(_data((1, 1, 2, 2))))


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (1, 1)])
    def test_gradcheck(self, stride, padding):
        gradcheck(
            lambda x, w, b: conv2d(x, w, b, stride=stride, padding=padding),
            [_data((2, 2, 5, 5)), _data((3, 2, 3, 3), 1), _data((3,), 2)],
        )

    def test_gradcheck_no_bias(self):
        gradcheck(
            lambda x, w: conv2d(x, w, padding=1),
            [_data((1, 2, 4, 4)), _data((2, 2, 3, 3), 1)],
        )


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        assert out.data.reshape(-1).tolist() == [5.0, 7.0, 13.0, 15.0]

    def test_max_pool_stride_one_overlap(self):
        x = _data((1, 2, 4, 4))
        out = max_pool2d(Tensor(x), 2, stride=1)
        assert out.shape == (1, 2, 3, 3)

    def test_avg_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        assert out.data.reshape(-1).tolist() == [2.5, 4.5, 10.5, 12.5]

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(
            np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32),
            requires_grad=True,
        )
        max_pool2d(x, 2).sum().backward()
        assert x.grad.reshape(-1).tolist() == [0.0, 0.0, 0.0, 1.0]

    def test_max_pool_gradcheck(self):
        values = _data((2, 2, 4, 4))
        # Perturb away from ties so argmax is stable under eps.
        values += np.linspace(0, 0.01, values.size).reshape(values.shape)
        gradcheck(lambda t: max_pool2d(t, 2), [values])

    def test_max_pool_overlapping_gradcheck(self):
        values = _data((1, 1, 4, 4))
        values += np.linspace(0, 0.01, values.size).reshape(values.shape)
        gradcheck(lambda t: max_pool2d(t, 3, stride=1), [values])

    @pytest.mark.parametrize("stride,padding", [(None, 0), (1, 1), (2, 1)])
    def test_avg_pool_gradcheck(self, stride, padding):
        gradcheck(
            lambda t: avg_pool2d(t, 2, stride=stride, padding=padding),
            [_data((1, 2, 4, 4))],
        )

    def test_pool_non_4d_raises(self):
        with pytest.raises(ShapeError):
            max_pool2d(Tensor(_data((4, 4))), 2)
