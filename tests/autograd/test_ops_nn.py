"""Neural-network primitives: references via scipy, gradchecks, stability."""

import numpy as np
import pytest
from scipy.special import expit, log_softmax as scipy_log_softmax, softmax as scipy_softmax

from repro.autograd import Tensor, gradcheck, ops_nn


def _data(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


class TestForward:
    def test_relu(self):
        out = ops_nn.relu(Tensor([-1.0, 0.0, 2.0]))
        assert out.data.tolist() == [0.0, 0.0, 2.0]

    def test_leaky_relu(self):
        out = ops_nn.leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0], rtol=1e-6)

    def test_sigmoid_matches_scipy(self):
        values = _data((4, 3))
        out = ops_nn.sigmoid(Tensor(values))
        np.testing.assert_allclose(out.data, expit(values), rtol=1e-5)

    def test_sigmoid_extreme_inputs_stable(self):
        # Faulty activations reach ~1e4; no overflow warnings allowed.
        values = np.array([-1e4, -100.0, 0.0, 100.0, 1e4], dtype=np.float32)
        with np.errstate(over="raise"):
            out = ops_nn.sigmoid(Tensor(values))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 0.5, 1.0, 1.0], atol=1e-6)

    def test_tanh_matches_numpy(self):
        values = _data((5,))
        np.testing.assert_allclose(
            ops_nn.tanh(Tensor(values)).data, np.tanh(values), rtol=1e-6
        )

    def test_log_softmax_matches_scipy(self):
        values = _data((3, 7))
        out = ops_nn.log_softmax(Tensor(values), axis=1)
        np.testing.assert_allclose(out.data, scipy_log_softmax(values, axis=1), rtol=1e-5)

    def test_log_softmax_large_logits_stable(self):
        values = np.array([[1000.0, 0.0], [0.0, -1000.0]])
        out = ops_nn.log_softmax(Tensor(values), axis=1)
        assert np.isfinite(out.data).all()

    def test_softmax_matches_scipy(self):
        values = _data((2, 5))
        out = ops_nn.softmax(Tensor(values), axis=-1)
        np.testing.assert_allclose(out.data, scipy_softmax(values, axis=-1), rtol=1e-5)

    def test_softmax_sums_to_one(self):
        out = ops_nn.softmax(Tensor(_data((4, 6))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), rtol=1e-6)


class TestGradients:
    def test_relu(self):
        values = _data((3, 4))
        values[np.abs(values) < 0.1] = 0.5  # stay away from the kink
        gradcheck(ops_nn.relu, [values])

    def test_leaky_relu(self):
        values = _data((3, 4))
        values[np.abs(values) < 0.1] = 0.5
        gradcheck(lambda t: ops_nn.leaky_relu(t, 0.05), [values])

    def test_sigmoid(self):
        gradcheck(ops_nn.sigmoid, [_data((2, 5))])

    def test_tanh(self):
        gradcheck(ops_nn.tanh, [_data((2, 5))])

    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_log_softmax(self, axis):
        gradcheck(lambda t: ops_nn.log_softmax(t, axis=axis), [_data((3, 4))])

    def test_softmax(self):
        gradcheck(lambda t: ops_nn.softmax(t, axis=1), [_data((3, 4))])
