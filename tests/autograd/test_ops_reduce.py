"""Reduction primitives."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops_reduce


def _data(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


class TestForward:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1), -1])
    @pytest.mark.parametrize("keepdims", [False, True])
    def test_sum_matches_numpy(self, axis, keepdims):
        values = _data((3, 4))
        out = ops_reduce.sum(Tensor(values), axis=axis, keepdims=keepdims)
        expected = values.sum(axis=axis, keepdims=keepdims)
        np.testing.assert_allclose(out.data, expected, rtol=1e-6)

    @pytest.mark.parametrize("axis", [None, 0, (1, 2)])
    def test_mean_matches_numpy(self, axis):
        values = _data((2, 3, 4))
        out = ops_reduce.mean(Tensor(values), axis=axis)
        np.testing.assert_allclose(out.data, values.mean(axis=axis), rtol=1e-6)

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_max_min_match_numpy(self, axis):
        values = _data((3, 5))
        np.testing.assert_allclose(
            ops_reduce.max(Tensor(values), axis=axis).data, values.max(axis=axis)
        )
        np.testing.assert_allclose(
            ops_reduce.min(Tensor(values), axis=axis).data, values.min(axis=axis)
        )

    def test_max_keepdims_shape(self):
        out = ops_reduce.max(Tensor(_data((2, 3))), axis=1, keepdims=True)
        assert out.shape == (2, 1)


class TestGradients:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 2)])
    def test_sum(self, axis):
        gradcheck(lambda t: ops_reduce.sum(t, axis=axis), [_data((2, 3, 2))])

    @pytest.mark.parametrize("keepdims", [False, True])
    def test_mean(self, keepdims):
        gradcheck(
            lambda t: ops_reduce.mean(t, axis=1, keepdims=keepdims), [_data((3, 4))]
        )

    def test_max_routes_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True)
        ops_reduce.max(x, axis=1).sum().backward()
        assert x.grad.tolist() == [[0.0, 1.0, 0.0]]

    def test_max_tie_splits_gradient(self):
        x = Tensor([[3.0, 3.0]], requires_grad=True)
        ops_reduce.max(x, axis=1).sum().backward()
        assert x.grad.tolist() == [[0.5, 0.5]]

    def test_min_gradcheck(self):
        values = _data((3, 4))
        gradcheck(lambda t: ops_reduce.min(t, axis=0), [values])

    def test_max_gradcheck_global(self):
        gradcheck(lambda t: ops_reduce.max(t), [_data((2, 3))])
