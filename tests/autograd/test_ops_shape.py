"""Shape-manipulation primitives."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops_shape
from repro.errors import ShapeError


def _data(shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape)


class TestForward:
    def test_reshape(self):
        out = ops_shape.reshape(Tensor(_data((2, 6))), (3, 4))
        assert out.shape == (3, 4)

    def test_reshape_wildcard(self):
        out = ops_shape.reshape(Tensor(_data((2, 6))), (-1,))
        assert out.shape == (12,)

    def test_transpose_default_reverses(self):
        out = ops_shape.transpose(Tensor(_data((2, 3, 4))))
        assert out.shape == (4, 3, 2)

    def test_transpose_axes(self):
        out = ops_shape.transpose(Tensor(_data((2, 3, 4))), (0, 2, 1))
        assert out.shape == (2, 4, 3)

    def test_getitem_slice(self):
        values = _data((4, 3))
        out = Tensor(values)[1:3]
        np.testing.assert_array_equal(out.data, values[1:3])

    def test_getitem_int_array(self):
        values = _data((5,))
        out = ops_shape.getitem(Tensor(values), np.array([0, 2, 2]))
        np.testing.assert_array_equal(out.data, values[[0, 2, 2]])

    def test_gather(self):
        values = _data((3, 4))
        index = np.array([[1], [0], [3]])
        out = ops_shape.gather(Tensor(values), index, axis=1)
        np.testing.assert_array_equal(
            out.data, np.take_along_axis(values, index, axis=1)
        )

    def test_pad2d_symmetric(self):
        out = ops_shape.pad2d(Tensor(_data((1, 1, 3, 3))), 2)
        assert out.shape == (1, 1, 7, 7)
        assert out.data[0, 0, 0, 0] == 0.0

    def test_pad2d_rejects_bad_tuple(self):
        with pytest.raises(ShapeError):
            ops_shape.pad2d(Tensor(_data((1, 1, 3, 3))), (1, 2))

    def test_concat(self):
        a, b = _data((2, 3)), _data((1, 3), 1)
        out = ops_shape.concat([Tensor(a), Tensor(b)], axis=0)
        np.testing.assert_array_equal(out.data, np.concatenate([a, b]))

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            ops_shape.concat([])

    def test_flatten_method(self):
        assert Tensor(_data((2, 3, 4))).flatten(1).shape == (2, 12)


class TestGradients:
    def test_reshape(self):
        gradcheck(lambda t: ops_shape.reshape(t, (6,)), [_data((2, 3))])

    def test_transpose(self):
        gradcheck(lambda t: ops_shape.transpose(t, (1, 0, 2)), [_data((2, 3, 2))])

    def test_getitem_scatter_adds_duplicates(self):
        x = Tensor(np.zeros(3, dtype=np.float64), requires_grad=True)
        ops_shape.getitem(x, np.array([1, 1, 2])).sum().backward()
        assert x.grad.tolist() == [0.0, 2.0, 1.0]

    def test_getitem_slice(self):
        gradcheck(lambda t: t[1:3, :2], [_data((4, 3))])

    def test_gather(self):
        index = np.array([[0], [2]])
        gradcheck(lambda t: ops_shape.gather(t, index, axis=1), [_data((2, 3))])

    def test_gather_duplicate_indices_accumulate(self):
        x = Tensor(np.zeros((1, 3), dtype=np.float64), requires_grad=True)
        index = np.array([[1, 1]])
        ops_shape.gather(x, index, axis=1).sum().backward()
        assert x.grad.tolist() == [[0.0, 2.0, 0.0]]

    def test_pad2d(self):
        gradcheck(lambda t: ops_shape.pad2d(t, (1, 2, 0, 1)), [_data((1, 2, 3, 3))])

    def test_concat(self):
        gradcheck(
            lambda a, b: ops_shape.concat([a, b], axis=1),
            [_data((2, 2)), _data((2, 3), 1)],
        )
