"""Tensor fundamentals: construction, graph mechanics, backward rules."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, enable_grad, is_grad_enabled, no_grad
from repro.errors import GraphError


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert t.dtype == np.float32

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float32

    def test_explicit_dtype_kept(self):
        t = Tensor([1, 2], dtype=np.int64)
        assert t.dtype == np.int64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_properties(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_item_non_scalar_raises(self):
        with pytest.raises(ValueError, match="single-element"):
            Tensor([1.0, 2.0]).item()

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert d.is_leaf


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x
        y.sum().backward()
        assert x.grad == pytest.approx([5.0])  # 2x + 1 at x=2

    def test_diamond_graph_accumulates(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).sum().backward()
        assert x.grad == pytest.approx([5.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        assert x.grad == pytest.approx([5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_without_grad_on_non_scalar_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GraphError, match="scalar"):
            (x * 2).backward()

    def test_backward_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0], dtype=np.float32))
        assert x.grad == pytest.approx([2.0, 20.0])

    def test_backward_wrong_grad_shape_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GraphError, match="shape"):
            (x * 2).backward(np.zeros(3, dtype=np.float32))

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(GraphError):
            x.backward()

    def test_no_grad_into_intermediate(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        y.sum().backward()
        assert y.grad is None  # intermediates keep no grad
        assert x.grad is not None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert x.grad == pytest.approx([1.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y.is_leaf

    def test_enable_grad_nested(self):
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_comparison_returns_numpy(self):
        x = Tensor([1.0, -1.0])
        mask = x > 0
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [True, False]
