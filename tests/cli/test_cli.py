"""The ``repro`` command line: parsing, dispatch, and the full pipeline."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS
from repro.models.registry import MODEL_NAMES


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return cache


TINY = [
    "--preset",
    "smoke",
    "--train-samples",
    "250",
    "--test-samples",
    "100",
    "--epochs",
    "6",
    "--post-epochs",
    "1",
    "--trials",
    "1",
]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_unknown_command(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("train", "protect", "evaluate", "experiment"):
            assert command in out


class TestListCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        for name in MODEL_NAMES:
            assert name in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_info(self, capsys):
        assert main(["info", "--model", "lenet", "--image-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "parameters" in out
        assert "ReLU sites" in out

    def test_info_verbose_prints_tree(self, capsys):
        assert main(
            ["info", "--model", "lenet", "--image-size", "16", "--verbose"]
        ) == 0
        assert "Conv2d" in capsys.readouterr().out

    def test_info_unknown_model_is_error(self, capsys):
        assert main(["info", "--model", "transformer9000"]) == 1
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_unknown_id(self, capsys):
        assert main(["experiment", "--id", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig3_runs_without_training(self, capsys):
        """fig3 evaluates pure activation functions — no data, no model."""
        assert main(["experiment", "--id", "fig3", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "FitReLU" in out

    def test_bad_preset(self, capsys):
        assert main(["experiment", "--id", "fig3", "--preset", "gigantic"]) == 1
        assert "unknown preset" in capsys.readouterr().err


class TestPipeline:
    def test_train_protect_evaluate(self, isolated_cache, tmp_path, capsys):
        checkpoint = tmp_path / "model.npz"

        assert main(["train", "--model", "lenet", *TINY]) == 0
        assert "trained lenet/synth10" in capsys.readouterr().out

        assert (
            main(
                [
                    "protect",
                    "--model",
                    "lenet",
                    "--method",
                    "clipact",
                    "--out",
                    str(checkpoint),
                    *TINY,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clipact" in out
        assert checkpoint.exists()

        assert (
            main(
                [
                    "evaluate",
                    "--checkpoint",
                    str(checkpoint),
                    "--rates",
                    "1e-5",
                    *TINY,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "clean accuracy" in out
        assert "rate 1.0e-05" in out

    def test_second_train_hits_cache(self, isolated_cache, capsys):
        assert main(["train", "--model", "lenet", *TINY]) == 0
        first = capsys.readouterr().out
        assert main(["train", "--model", "lenet", *TINY]) == 0
        second = capsys.readouterr().out
        # Same reported accuracy both times (the cache reproduces weights).
        assert first.split("accuracy")[1] == second.split("accuracy")[1]

    def test_protect_records_format_and_evaluate_uses_it(
        self, isolated_cache, tmp_path, capsys
    ):
        """Regression: evaluate used to hard-code Q15.16, so faults for a
        Q7.8 checkpoint landed in the wrong bit-space."""
        from repro.core.checkpoint import load_protected
        from repro.models.registry import build_model

        checkpoint = tmp_path / "q78.npz"
        assert (
            main(
                [
                    "protect",
                    "--model",
                    "lenet",
                    "--method",
                    "clipact",
                    "--format",
                    "q7.8",
                    "--out",
                    str(checkpoint),
                    *TINY,
                ]
            )
            == 0
        )
        capsys.readouterr()

        def builder():
            return build_model(
                "lenet", num_classes=10, scale=0.5, image_size=16, seed=0
            )

        _, meta = load_protected(checkpoint, builder)
        assert meta["format"] == "Q7.8"

        assert (
            main(
                ["evaluate", "--checkpoint", str(checkpoint), "--rates", "1e-4", *TINY]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "rate 1.0e-04" in captured.out
        # The manifest carries a format, so no fallback warning appears.
        assert "assuming Q15.16" not in captured.err

    def test_evaluate_warns_when_manifest_lacks_format(self, capsys):
        from repro.cli.main import _checkpoint_format
        from repro.quant.fixed_point import Q15_16
        from repro.quant.formats import Q3_4

        assert _checkpoint_format({}) is Q15_16
        assert "assuming Q15.16" in capsys.readouterr().err
        assert _checkpoint_format({"format": "Q3.4"}) == Q3_4
        assert capsys.readouterr().err == ""

    def test_evaluate_parallel_workers(self, isolated_cache, tmp_path, capsys):
        """The --workers flag drives the process-pool campaign backend."""
        checkpoint = tmp_path / "par.npz"
        assert (
            main(
                [
                    "protect",
                    "--model",
                    "lenet",
                    "--method",
                    "none",
                    "--out",
                    str(checkpoint),
                    *TINY,
                ]
            )
            == 0
        )
        capsys.readouterr()
        argv = [
            "evaluate",
            "--checkpoint",
            str(checkpoint),
            "--rates",
            "1e-4",
            *TINY,
            "--trials",
            "2",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Same seed, same campaign — the parallel backend reports the
        # exact same accuracy lines as the serial one.
        assert (
            serial_out.splitlines()[-1] == parallel_out.splitlines()[-1]
        )

    def test_evaluate_rejects_non_checkpoint(self, tmp_path, capsys):
        from repro.utils.serialization import save_state

        bare = tmp_path / "bare.npz"
        save_state(bare, {"weight": np.zeros(3)})
        assert main(["evaluate", "--checkpoint", str(bare)]) == 1
        assert "not a protected-model" in capsys.readouterr().err


class TestEnvironmentIsolation:
    def test_cache_dir_respected(self, isolated_cache):
        assert main(["train", "--model", "lenet", *TINY]) == 0
        assert os.environ["REPRO_CACHE_DIR"] == str(isolated_cache)
        assert any(isolated_cache.iterdir())


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--checkpoint", "model.npz"]
        )
        assert args.checkpoint == ["model.npz"]
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_batch == 32
        assert args.max_latency_ms == 5.0
        assert args.batch_workers == 1
        assert args.registry_capacity == 4
        assert args.chaos_ber is None
        assert args.chaos_seed == 0

    def test_serve_collects_repeated_checkpoints_and_chaos(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--checkpoint",
                "fit=a.npz",
                "--checkpoint",
                "plain=b.npz",
                "--port",
                "0",
                "--chaos-ber",
                "1e-5",
                "--chaos-seed",
                "3",
            ]
        )
        assert args.checkpoint == ["fit=a.npz", "plain=b.npz"]
        assert args.port == 0
        assert args.chaos_ber == 1e-5
        assert args.chaos_seed == 3

    def test_serve_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_rejects_negative_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--checkpoint", "a.npz", "--port", "-1"]
            )
