"""The ``repro campaign`` command group: run / resume / status / merge / report."""

import json
import os

import pytest

from repro.cli import main

TINY = [
    "--preset",
    "smoke",
    "--train-samples",
    "250",
    "--test-samples",
    "100",
    "--epochs",
    "6",
    "--post-epochs",
    "1",
]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """One smoke-trained protected checkpoint shared by the module."""
    root = tmp_path_factory.mktemp("campaign-cli")
    cache_before = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
    try:
        path = root / "model.npz"
        code = main(
            [
                "protect",
                "--model",
                "lenet",
                "--method",
                "clipact",
                "--out",
                str(path),
                *TINY,
            ]
        )
        assert code == 0
        yield str(path)
    finally:
        if cache_before is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = cache_before


def _run(checkpoint, store, *extra):
    return main(
        [
            "campaign",
            "run",
            "--checkpoint",
            checkpoint,
            "--store",
            str(store),
            "--rates",
            "1e-5",
            "3e-5",
            *TINY,
            "--trials",
            "3",
            *extra,
        ]
    )


class TestRoundTrip:
    def test_run_status_report(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _run(checkpoint, store) == 0
        out = capsys.readouterr().out
        assert "campaign store" in out
        assert "rate 1.0e-05" in out
        assert "store complete" in out

        assert main(["campaign", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "3/3" in out
        assert "complete: 6/6 trials" in out

        assert main(["campaign", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "## Vulnerability atlas" in out
        assert "### By bit position" in out
        report = (store / "report.md").read_text()
        assert "rate=1e-05" in report
        atlas = json.loads((store / "atlas.json").read_text())
        assert atlas["trials"] == 6
        manifest = json.loads((store / "manifest.json").read_text())
        assert atlas["baseline"] == manifest["meta"]["clean_accuracy"]

    def test_limit_interrupts_then_resume_completes(
        self, checkpoint, tmp_path, capsys
    ):
        straight = tmp_path / "straight"
        assert _run(checkpoint, straight) == 0
        assert main(["campaign", "report", "--store", str(straight)]) == 0
        capsys.readouterr()

        resumed = tmp_path / "resumed"
        assert _run(checkpoint, resumed, "--limit", "2") == 0
        out = capsys.readouterr().out
        assert "interrupted after 2 new trials" in out
        assert "campaign resume" in out

        assert main(["campaign", "resume", "--store", str(resumed)]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert "store complete" in out

        assert main(["campaign", "report", "--store", str(resumed)]) == 0
        capsys.readouterr()
        # The acceptance check: byte-identical artifacts either way.
        assert (resumed / "report.md").read_text() == (
            straight / "report.md"
        ).read_text()
        assert (resumed / "atlas.json").read_text() == (
            straight / "atlas.json"
        ).read_text()

    def test_rerunning_a_complete_store_is_a_cheap_no_op(
        self, checkpoint, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert _run(checkpoint, store) == 0
        capsys.readouterr()
        assert _run(checkpoint, store) == 0
        out = capsys.readouterr().out
        assert "0 new trials journaled" in out


class TestShardMerge:
    def test_sharded_stores_merge_to_the_straight_report(
        self, checkpoint, tmp_path, capsys
    ):
        straight = tmp_path / "straight"
        assert _run(checkpoint, straight) == 0
        assert main(["campaign", "report", "--store", str(straight)]) == 0

        shards = []
        for index in (1, 2):
            shard_store = tmp_path / f"shard{index}"
            assert _run(checkpoint, shard_store, "--shard", f"{index}/2") == 0
            shards.append(str(shard_store))
        out = capsys.readouterr().out
        assert "[shard 1/2]" in out

        merged = tmp_path / "merged"
        assert main(["campaign", "merge", "--out", str(merged), *shards]) == 0
        out = capsys.readouterr().out
        assert "merged 2 stores" in out

        assert main(["campaign", "report", "--store", str(merged)]) == 0
        capsys.readouterr()
        assert (merged / "report.md").read_text() == (
            straight / "report.md"
        ).read_text()
        assert (merged / "atlas.json").read_text() == (
            straight / "atlas.json"
        ).read_text()


class TestErrors:
    def test_status_on_missing_store(self, tmp_path, capsys):
        assert main(["campaign", "status", "--store", str(tmp_path / "no")]) == 1
        assert "not a campaign store" in capsys.readouterr().err

    def test_resume_on_missing_store(self, tmp_path, capsys):
        assert main(["campaign", "resume", "--store", str(tmp_path / "no")]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_rejects_mismatched_store(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _run(checkpoint, store) == 0
        capsys.readouterr()
        # Same store, different trial count + rates: recipe mismatch,
        # not a silent mix of incompatible journals (or a silently
        # ignored --rates request).
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--checkpoint",
                    checkpoint,
                    "--store",
                    str(store),
                    "--rates",
                    "1e-4",
                    *TINY,
                    "--trials",
                    "5",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "different settings" in err
        assert "rates" in err
        assert "trials" in err

    def test_bad_shard_spec(self, checkpoint, tmp_path, capsys):
        assert _run(checkpoint, tmp_path / "s", "--shard", "3/2") == 1
        assert "out of range" in capsys.readouterr().err

    def test_bad_limit(self, checkpoint, tmp_path, capsys):
        assert _run(checkpoint, tmp_path / "s", "--limit", "0") == 1
        assert "--limit" in capsys.readouterr().err


class TestReplicasCLI:
    def test_replica_batched_artifacts_byte_identical_to_off(
        self, checkpoint, tmp_path, capsys
    ):
        """The PR acceptance, end to end through the CLI: journal,
        report.md, and atlas.json unchanged by the scheduling knob."""
        off = tmp_path / "off"
        assert _run(checkpoint, off, "--replicas", "off") == 0
        assert main(["campaign", "report", "--store", str(off)]) == 0

        batched = tmp_path / "batched"
        assert _run(checkpoint, batched, "--replicas", "3") == 0
        assert main(["campaign", "report", "--store", str(batched)]) == 0
        capsys.readouterr()

        strip = lambda line: {  # noqa: E731 — "sec" is wall-clock, not identity
            k: v for k, v in json.loads(line).items() if k != "sec"
        }
        off_journal = (off / "trials.jsonl").read_text().splitlines()
        batched_journal = (batched / "trials.jsonl").read_text().splitlines()
        assert [strip(l) for l in off_journal] == [strip(l) for l in batched_journal]
        assert (batched / "report.md").read_bytes() == (off / "report.md").read_bytes()
        assert (batched / "atlas.json").read_bytes() == (off / "atlas.json").read_bytes()

    def test_report_renders_density_column(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _run(checkpoint, store) == 0
        assert main(["campaign", "report", "--store", str(store)]) == 0
        capsys.readouterr()
        assert "SDC density" in (store / "report.md").read_text()
        atlas = json.loads((store / "atlas.json").read_text())
        hit = [row for row in atlas["layers"] if row["trials"]]
        assert all("sdc_density" in row for row in hit)

    def test_resume_accepts_replicas_override(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _run(checkpoint, store, "--limit", "2", "--replicas", "off") == 0
        assert (
            main(
                [
                    "campaign",
                    "resume",
                    "--store",
                    str(store),
                    "--replicas",
                    "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "store complete" in out

    def test_garbage_replicas_spelling_is_an_argparse_error(self, checkpoint):
        with pytest.raises(SystemExit):
            _run(checkpoint, "ignored", "--replicas", "many")
