"""``repro campaign serve-store`` / ``watch``: the control-plane CLI.

The heavyweight acceptance (SIGKILL + steal + byte-identity) lives in
tests/coord/test_takeover.py against library-level workers; this module
covers the CLI wiring — create-or-join, recipe admission, graceful
completion, and the watch views — with one worker end to end.
"""

import json
import os

import pytest

from repro.cli import main

TINY = [
    "--preset",
    "smoke",
    "--train-samples",
    "250",
    "--test-samples",
    "100",
    "--epochs",
    "6",
    "--post-epochs",
    "1",
]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    root = tmp_path_factory.mktemp("coord-cli")
    cache_before = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
    try:
        path = root / "model.npz"
        code = main(
            [
                "protect",
                "--model",
                "lenet",
                "--method",
                "clipact",
                "--out",
                str(path),
                *TINY,
            ]
        )
        assert code == 0
        yield str(path)
    finally:
        if cache_before is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = cache_before


def _serve(checkpoint, store, *extra):
    return main(
        [
            "campaign",
            "serve-store",
            "--checkpoint",
            checkpoint,
            "--store",
            str(store),
            "--rates",
            "1e-5",
            "3e-5",
            *TINY,
            "--trials",
            "3",
            "--chunk",
            "2",
            *extra,
        ]
    )


class TestServeStore:
    def test_first_worker_creates_drains_and_matches_plain_run(
        self, checkpoint, tmp_path, capsys
    ):
        coord = tmp_path / "coord"
        assert _serve(checkpoint, coord, "--worker-id", "alpha") == 0
        out = capsys.readouterr().out
        assert "created campaign store" in out
        assert "worker alpha joining" in out
        assert "store complete" in out

        straight = tmp_path / "straight"
        code = main(
            [
                "campaign",
                "run",
                "--checkpoint",
                checkpoint,
                "--store",
                str(straight),
                "--rates",
                "1e-5",
                "3e-5",
                *TINY,
                "--trials",
                "3",
            ]
        )
        assert code == 0
        for store in (coord, straight):
            assert main(["campaign", "report", "--store", str(store)]) == 0
        capsys.readouterr()
        # The identity contract, through the CLI: a coordinated drain's
        # artifacts are byte-identical to a plain run's.
        assert (coord / "report.md").read_bytes() == (
            straight / "report.md"
        ).read_bytes()
        assert (coord / "atlas.json").read_bytes() == (
            straight / "atlas.json"
        ).read_bytes()

    def test_joining_a_complete_store_is_a_noop(
        self, checkpoint, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert _serve(checkpoint, store, "--worker-id", "alpha") == 0
        assert _serve(checkpoint, store, "--worker-id", "beta") == 0
        out = capsys.readouterr().out
        assert "worker beta: 0 trials" in out

    def test_limit_hands_back_then_a_peer_finishes(
        self, checkpoint, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert _serve(checkpoint, store, "--worker-id", "a", "--limit", "2") == 0
        out = capsys.readouterr().out
        assert "stopped with work left" in out
        assert _serve(checkpoint, store, "--worker-id", "b") == 0
        out = capsys.readouterr().out
        assert "store complete" in out

    def test_mismatched_recipe_is_refused_admission(
        self, checkpoint, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert _serve(checkpoint, store, "--worker-id", "alpha") == 0
        capsys.readouterr()
        code = main(
            [
                "campaign",
                "serve-store",
                "--checkpoint",
                checkpoint,
                "--store",
                str(store),
                "--rates",
                "9e-4",
                *TINY,
                "--trials",
                "3",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "different settings" in err
        assert "rates" in err


class TestWatch:
    def test_once_renders_workers_and_configs(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _serve(checkpoint, store, "--worker-id", "alpha") == 0
        capsys.readouterr()
        assert main(["campaign", "watch", "--store", str(store), "--once"]) == 0
        out = capsys.readouterr().out
        assert "(complete)" in out
        assert "worker alpha: released" in out

    def test_json_format_round_trips(self, checkpoint, tmp_path, capsys):
        store = tmp_path / "store"
        assert _serve(checkpoint, store, "--worker-id", "alpha") == 0
        capsys.readouterr()
        code = main(
            [
                "campaign",
                "watch",
                "--store",
                str(store),
                "--once",
                "--format",
                "json",
            ]
        )
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert status["workers"][0]["worker"] == "alpha"
        assert status["claims"] == []

    def test_watch_on_missing_store_errors(self, tmp_path, capsys):
        assert main(["campaign", "watch", "--store", str(tmp_path / "no")]) == 1
        assert "not a campaign store" in capsys.readouterr().err
