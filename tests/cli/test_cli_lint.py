"""The ``repro lint`` subcommand: exit codes, formats, baseline flags."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main


def _write(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _lint(*argv):
    return main(["lint", *argv])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        _write(tmp_path, "src/repro/serve/ok.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        assert _lint("src") == 0
        assert "0 findings" in capsys.readouterr().out

    def test_finding_exits_one_with_rule_id(self, tmp_path, monkeypatch, capsys):
        # Acceptance probe: reintroducing the PR 3 race (RPL002) fails.
        _write(
            tmp_path,
            "src/repro/serve/bad.py",
            """
            def serve(model):
                model.training = False
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert _lint("src") == 1
        out = capsys.readouterr().out
        assert "src/repro/serve/bad.py:3:5: RPL002" in out

    def test_wall_clock_in_store_fails_rpl004(self, tmp_path, monkeypatch, capsys):
        # Acceptance probe: time.time() on a journaled path (RPL004).
        _write(
            tmp_path,
            "src/repro/store/bad.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert _lint("src") == 1
        assert "RPL004" in capsys.readouterr().out

    def test_syntax_error_exits_two_without_traceback(
        self, tmp_path, monkeypatch, capsys
    ):
        _write(tmp_path, "src/repro/serve/broken.py", "def f(:\n")
        monkeypatch.chdir(tmp_path)
        assert _lint("src") == 2
        out = capsys.readouterr().out
        assert "src/repro/serve/broken.py:1: error: syntax error" in out
        assert "Traceback" not in out


class TestFlagsAndFormats:
    def test_list_rules(self, capsys):
        assert _lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in (f"RPL00{i}" for i in range(1, 9)):
            assert rule_id in out

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        _write(
            tmp_path,
            "src/repro/serve/bad.py",
            """
            def serve(model):
                model.training = False
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert _lint("src", "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert [f["rule"] for f in payload["findings"]] == ["RPL002"]

    def test_update_baseline_then_clean(self, tmp_path, monkeypatch, capsys):
        _write(
            tmp_path,
            "src/repro/serve/bad.py",
            """
            def serve(model):
                model.training = False
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert _lint("src", "--baseline", "bl.json", "--update-baseline") == 0
        assert "wrote 1 baseline entries" in capsys.readouterr().out
        assert _lint("src", "--baseline", "bl.json") == 0
        assert "1 baselined" in capsys.readouterr().out
        # --no-baseline reveals the grandfathered finding again.
        assert _lint("src", "--baseline", "bl.json", "--no-baseline") == 1

    def test_update_baseline_refuses_unparsable_tree(
        self, tmp_path, monkeypatch, capsys
    ):
        _write(tmp_path, "src/repro/serve/broken.py", "def f(:\n")
        monkeypatch.chdir(tmp_path)
        assert _lint("src", "--baseline", "bl.json", "--update-baseline") == 2
        assert not (tmp_path / "bl.json").exists()
        assert "refusing" in capsys.readouterr().err
