"""Observability through the CLI: profile, tracing, status views."""

import json
import logging
import os

import pytest

from repro.cli import main

TINY = [
    "--preset",
    "smoke",
    "--train-samples",
    "250",
    "--test-samples",
    "100",
    "--epochs",
    "6",
    "--post-epochs",
    "1",
    "--trials",
    "1",
]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """One smoke-trained protected checkpoint shared by the module."""
    root = tmp_path_factory.mktemp("obs-cli")
    cache_before = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root / "cache")
    try:
        path = root / "model.npz"
        code = main(
            [
                "protect",
                "--model",
                "lenet",
                "--method",
                "clipact",
                "--out",
                str(path),
                *TINY,
            ]
        )
        assert code == 0
        yield str(path)
    finally:
        if cache_before is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = cache_before


@pytest.fixture(scope="module")
def store(checkpoint, tmp_path_factory):
    """One complete two-trial campaign store."""
    path = tmp_path_factory.mktemp("obs-store") / "store"
    code = main(
        [
            "campaign",
            "run",
            "--checkpoint",
            checkpoint,
            "--store",
            str(path),
            "--rates",
            "1e-5",
            *TINY,
            "--trials",
            "2",
        ]
    )
    assert code == 0
    return str(path)


class TestProfileCommand:
    def test_prints_per_kernel_table(self, checkpoint, capsys):
        assert main(["profile", checkpoint, "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "gather" in out and "gemm" in out and "epilogue" in out
        assert "conv" in out  # lenet has instrumented conv kernels
        assert "ms/forward" in out

    def test_writes_chrome_trace(self, checkpoint, tmp_path, capsys):
        trace = tmp_path / "kernels.json"
        code = main(
            [
                "profile",
                checkpoint,
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        payload = json.loads(trace.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert complete
        assert all(e["cat"] == "plan" for e in complete)


class TestGlobalFlags:
    def test_global_trace_exports_spans(self, checkpoint, tmp_path, capsys):
        trace = tmp_path / "session.json"
        code = main(
            ["--trace", str(trace), "profile", checkpoint, "--repeats", "1"]
        )
        assert code == 0
        assert "trace events" in capsys.readouterr().err
        names = {
            event["name"]
            for event in json.loads(trace.read_text())["traceEvents"]
            if event["ph"] == "X"
        }
        assert "runtime.compile" in names

    def test_global_trace_disabled_after_exit(self, checkpoint, tmp_path):
        from repro.obs import tracing_enabled

        trace = tmp_path / "session.json"
        main(["--trace", str(trace), "list-experiments"])
        assert not tracing_enabled()

    def test_log_level_sets_library_verbosity(self):
        root = logging.getLogger("repro")
        before = root.level
        try:
            assert main(["--log-level", "debug", "list-experiments"]) == 0
            assert root.level == logging.DEBUG
            assert main(["--log-level", "warning", "list-experiments"]) == 0
            assert root.level == logging.WARNING
        finally:
            root.setLevel(before)

    def test_log_level_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "list-experiments"])


class TestStatusViews:
    def test_json_format_round_trips(self, store, capsys):
        code = main(
            ["campaign", "status", "--store", store, "--format", "json"]
        )
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True
        assert status["journaled"] == status["expected"] == 2
        (config,) = status["configs"]
        assert config["journaled"] == 2

    def test_follow_exits_when_complete(self, store, capsys):
        code = main(
            [
                "campaign",
                "status",
                "--store",
                store,
                "--follow",
                "--interval",
                "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2/2 trials" in out
        assert "complete:" in out

    def test_follow_updates_default_registry_gauges(self, store):
        from repro.obs import default_registry

        main(["campaign", "status", "--store", store, "--follow"])
        gauge = default_registry().gauge(
            "repro_campaign_status_journaled",
            "Journaled trials seen by the status follower, per store.",
            labelnames=("store",),
        )
        assert gauge.value(store=store) == 2


class TestProfileReplicas:
    def test_per_lane_profile_splits_shared_from_suffix_cost(
        self, checkpoint, capsys
    ):
        assert main(["profile", checkpoint, "--batch", "8", "--replicas", "4"]) == 0
        out = capsys.readouterr().out
        assert "shared clean pass" in out
        assert "amortised over 4 lanes" in out
        assert "lane suffixes" in out
        assert "replica-batched" in out
