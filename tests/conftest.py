"""Shared fixtures: tiny datasets, loaders, and a trained model.

Heavy artefacts (the trained LeNet) are session-scoped so the many tests
that need "a real trained model" pay for training once.

Also provides ``--shard i/n``: a dependency-free test sharder (CI splits
the tier-1 suite across parallel jobs with it).  Tests are assigned to
shards by a stable hash of their file path — whole files stay together,
so session-scoped fixtures are not re-trained by every shard that
touches a module.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.training import Trainer, TrainingConfig, evaluate_accuracy
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.models.registry import build_model

IMAGE_SIZE = 16
NUM_CLASSES = 10


# ----------------------------------------------------------------------
# Sharding (CI splits the suite across parallel jobs)
# ----------------------------------------------------------------------
def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--shard",
        default=None,
        metavar="i/n",
        help=(
            "run only the i-th of n stable test shards (1-based), e.g. "
            "--shard 1/2; files hash to shards, so every test runs in "
            "exactly one shard"
        ),
    )


def _parse_shard(spec: str) -> tuple[int, int]:
    try:
        index_text, total_text = spec.split("/", 1)
        index, total = int(index_text), int(total_text)
    except ValueError:
        raise pytest.UsageError(f"--shard expects i/n (e.g. 1/2), got {spec!r}")
    if total < 1 or not 1 <= index <= total:
        raise pytest.UsageError(f"--shard {spec!r} out of range")
    return index, total


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    spec = config.getoption("--shard")
    if spec is None:
        return
    index, total = _parse_shard(spec)
    if total == 1:
        return
    rootpath = config.rootpath
    selected, deselected = [], []
    for item in items:
        # Hash the rootdir-relative file path (posix form), not the
        # nodeid: keeping a file's tests in one shard preserves its
        # fixture reuse, and the bucket is identical across checkouts,
        # platforms, and processes (unlike builtin hash() or absolute
        # paths).
        try:
            key = item.path.relative_to(rootpath).as_posix()
        except ValueError:
            key = str(item.path)
        bucket = zlib.crc32(key.encode("utf-8")) % total
        (selected if bucket == index - 1 else deselected).append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = selected


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def train_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset(
        num_classes=NUM_CLASSES, num_samples=500, image_size=IMAGE_SIZE, seed=7
    )


@pytest.fixture(scope="session")
def test_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset(
        num_classes=NUM_CLASSES,
        num_samples=200,
        image_size=IMAGE_SIZE,
        seed=7,
        split="test",
    )


@pytest.fixture(scope="session")
def normalize() -> Normalize:
    return Normalize(SYNTH_MEAN, SYNTH_STD)


@pytest.fixture(scope="session")
def train_loader(train_dataset, normalize) -> DataLoader:
    return DataLoader(
        train_dataset, batch_size=64, shuffle=True, rng=0, transform=normalize
    )


@pytest.fixture(scope="session")
def test_loader(test_dataset, normalize) -> DataLoader:
    return DataLoader(test_dataset, batch_size=128, transform=normalize)


@pytest.fixture(scope="session")
def trained_state(train_loader, test_loader) -> dict:
    """State dict + metadata of a LeNet trained to useful accuracy."""
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    Trainer(model, TrainingConfig(epochs=10, lr=0.1)).fit(train_loader)
    accuracy = evaluate_accuracy(model, test_loader)
    assert accuracy > 0.7, f"fixture model failed to train (accuracy {accuracy:.1%})"
    return {"state": model.state_dict(), "accuracy": accuracy}


@pytest.fixture
def trained_model(trained_state):
    """A fresh trained LeNet instance (mutable per test)."""
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    model.load_state_dict(trained_state["state"])
    return model
