"""Shared fixtures: tiny datasets, loaders, and a trained model.

Heavy artefacts (the trained LeNet) are session-scoped so the many tests
that need "a real trained model" pay for training once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.training import Trainer, TrainingConfig, evaluate_accuracy
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.models.registry import build_model

IMAGE_SIZE = 16
NUM_CLASSES = 10


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def train_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset(
        num_classes=NUM_CLASSES, num_samples=500, image_size=IMAGE_SIZE, seed=7
    )


@pytest.fixture(scope="session")
def test_dataset() -> SyntheticImageDataset:
    return SyntheticImageDataset(
        num_classes=NUM_CLASSES,
        num_samples=200,
        image_size=IMAGE_SIZE,
        seed=7,
        split="test",
    )


@pytest.fixture(scope="session")
def normalize() -> Normalize:
    return Normalize(SYNTH_MEAN, SYNTH_STD)


@pytest.fixture(scope="session")
def train_loader(train_dataset, normalize) -> DataLoader:
    return DataLoader(
        train_dataset, batch_size=64, shuffle=True, rng=0, transform=normalize
    )


@pytest.fixture(scope="session")
def test_loader(test_dataset, normalize) -> DataLoader:
    return DataLoader(test_dataset, batch_size=128, transform=normalize)


@pytest.fixture(scope="session")
def trained_state(train_loader, test_loader) -> dict:
    """State dict + metadata of a LeNet trained to useful accuracy."""
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    Trainer(model, TrainingConfig(epochs=10, lr=0.1)).fit(train_loader)
    accuracy = evaluate_accuracy(model, test_loader)
    assert accuracy > 0.7, f"fixture model failed to train (accuracy {accuracy:.1%})"
    return {"state": model.state_dict(), "accuracy": accuracy}


@pytest.fixture
def trained_model(trained_state):
    """A fresh trained LeNet instance (mutable per test)."""
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    model.load_state_dict(trained_state["state"])
    return model
