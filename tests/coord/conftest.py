"""Shared helpers for the coordination-layer tests.

The campaigns here are deliberately tiny and checkpoint-free — a
quantized 4→8→2 MLP with a parameter-health evaluator — because the
coordination protocol under test is entirely about *who* evaluates
*which* trial, not about model quality.  Trial seeds depend only on
(campaign seed, tag, config spec, trial index), so any two campaign
instances built by :func:`make_campaign` journal identical records.
"""

import numpy as np
import pytest

from repro import nn
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.quant import quantize_module
from repro.store import CampaignStore

RATES = (1e-3, 5e-3)
TRIALS = 8
SEED = 11


def _model():
    return quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )


class _ParamHealth:
    def __init__(self, model):
        self.model = model

    def __call__(self) -> float:
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


def make_campaign(workers=0, trials=TRIALS, seed=SEED, shard=None):
    model = _model()
    return FaultCampaign(
        FaultInjector(model),
        _ParamHealth(model),
        trials=trials,
        seed=seed,
        workers=workers,
        shard=shard,
    )


def fault_models(rates=RATES):
    return [BitFlipFaultModel.at_rate(rate) for rate in rates]


def make_store(path, campaign=None, rates=RATES):
    """Create a coordinated store: manifest + the full sweep registered."""
    own = campaign is None
    if own:
        campaign = make_campaign()
    try:
        with CampaignStore.for_campaign(path, campaign) as store:
            keys = store.register_configs(fault_models(rates))
    finally:
        if own:
            campaign.close()
    return keys


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "store"
    make_store(path)
    return path
