"""Subprocess body for the SIGKILL-takeover test (not a test module).

Joins the store given on argv as a deliberately slow coordinated worker
so the parent test can SIGKILL it mid-range.  The evaluator computes
the exact same parameter-health number as the parent's — it just naps
first — so every record this worker *does* land is identical to what
the rescuer (or a serial run) would journal for the same trial index.

Usage: python takeover_child.py <store> <worker_id> <seconds_per_trial>
"""

import sys
import time

import numpy as np

from repro import nn
from repro.coord import CampaignWorker
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.quant import quantize_module

RATES = (1e-3, 5e-3)


class SlowParamHealth:
    def __init__(self, model, nap_s):
        self.model = model
        self.nap_s = nap_s

    def __call__(self) -> float:
        time.sleep(self.nap_s)
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


def main() -> int:
    store, worker_id, nap_s = sys.argv[1], sys.argv[2], float(sys.argv[3])
    model = quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )
    campaign = FaultCampaign(
        FaultInjector(model),
        SlowParamHealth(model, nap_s),
        trials=8,
        seed=11,
    )
    with campaign:
        worker = CampaignWorker(
            campaign,
            store,
            [BitFlipFaultModel.at_rate(rate) for rate in RATES],
            worker_id=worker_id,
            chunk=3,
            expiry_s=5.0,
        )
        worker.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
