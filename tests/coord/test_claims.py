"""Work-stealing range claims: atomic acquisition, fencing, GC."""

import os

import pytest

from repro.coord import CoordError, RangeScheduler, WorkerLease, list_claims
from repro.coord.lease import list_leases
from repro.coord.scheduler import read_claim

CFG = "::rate=1e-03"


def scheduler(tmp_path, worker, trials=8, chunk=3, configs=(CFG,)):
    return RangeScheduler(
        tmp_path, worker, trials=trials, chunk=chunk, configs=list(configs)
    )


class TestRanges:
    def test_chunk_aligned_with_ragged_tail(self, tmp_path):
        assert scheduler(tmp_path, "a").ranges() == [(0, 3), (3, 6), (6, 8)]

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(CoordError, match="chunk"):
            scheduler(tmp_path, "a", chunk=0)
        with pytest.raises(CoordError, match="trials"):
            scheduler(tmp_path, "a", trials=0)


class TestClaiming:
    def test_first_claim_wins_and_orders_by_trial(self, tmp_path):
        sched = scheduler(tmp_path, "a")
        handle = sched.next_claim({}, {})
        assert (handle.claim.start, handle.claim.stop) == (0, 3)
        assert handle.claim.worker == "a"
        assert handle.claim.fence == 1

    def test_peer_skips_claimed_range_of_live_owner(self, tmp_path):
        with WorkerLease(tmp_path, "a"):
            first = scheduler(tmp_path, "a").next_claim({}, {})
            assert first.claim.start == 0
            peer = scheduler(tmp_path, "b").next_claim(
                {}, list_leases(tmp_path)
            )
            assert peer.claim.start == 3  # next free range, no steal
            assert peer.claim.fence == 1

    def test_own_claim_is_resumed_not_restolen(self, tmp_path):
        sched = scheduler(tmp_path, "a")
        first = sched.next_claim({}, {})
        again = sched.next_claim({}, {})
        assert (again.claim.start, again.claim.fence) == (
            first.claim.start,
            first.claim.fence,
        )

    def test_nothing_claimable_returns_none(self, tmp_path):
        done = {CFG: set(range(8))}
        assert scheduler(tmp_path, "a").next_claim(done, {}) is None

    def test_partial_progress_skips_complete_ranges(self, tmp_path):
        done = {CFG: {0, 1, 2, 3, 4}}  # [0,3) done, [3,6) half done
        handle = scheduler(tmp_path, "a").next_claim(done, {})
        assert (handle.claim.start, handle.claim.stop) == (3, 6)

    def test_configs_walked_in_manifest_order(self, tmp_path):
        sched = scheduler(tmp_path, "a", configs=[CFG, "::rate=5e-03"])
        done = {CFG: set(range(8))}
        handle = sched.next_claim(done, {})
        assert handle.claim.config == "::rate=5e-03"


class TestStealing:
    def _claim_as_corpse(self, tmp_path):
        """A claim whose owner's lease has expired (or never existed)."""
        return scheduler(tmp_path, "dead").next_claim({}, {})

    def test_steals_from_ownerless_claim(self, tmp_path):
        stale = self._claim_as_corpse(tmp_path)
        fired = []
        handle = scheduler(tmp_path, "thief").next_claim(
            {}, {}, on_steal=lambda: fired.append(1)
        )
        assert handle.claim.worker == "thief"
        assert handle.claim.fence == stale.claim.fence + 1
        assert fired == [1]

    def test_steals_from_released_owner(self, tmp_path):
        with WorkerLease(tmp_path, "dead"):
            self._claim_as_corpse(tmp_path)
        handle = scheduler(tmp_path, "thief").next_claim(
            {}, list_leases(tmp_path)
        )
        assert (handle.claim.worker, handle.claim.fence) == ("thief", 2)

    def test_fencing_invalidates_the_old_handle(self, tmp_path):
        stale = self._claim_as_corpse(tmp_path)
        assert stale.verify()
        scheduler(tmp_path, "thief").next_claim({}, {})
        assert not stale.verify()
        # And the corpse's release must not erase the thief's claim.
        stale.release()
        current = read_claim(stale.path)
        assert current is not None and current.worker == "thief"

    def test_thief_handle_survives_its_own_release(self, tmp_path):
        self._claim_as_corpse(tmp_path)
        handle = scheduler(tmp_path, "thief").next_claim({}, {})
        handle.release()
        assert read_claim(handle.path) is None


class TestGarbageCollection:
    def test_complete_range_claim_is_collected(self, tmp_path):
        handle = scheduler(tmp_path, "a").next_claim({}, {})
        assert os.path.exists(handle.path)
        done = {CFG: set(range(8))}
        assert scheduler(tmp_path, "b").next_claim(done, {}) is None
        assert list_claims(tmp_path) == []

    def test_released_claim_reclaimable_immediately(self, tmp_path):
        handle = scheduler(tmp_path, "a").next_claim({}, {})
        handle.release()
        again = scheduler(tmp_path, "b").next_claim({}, {})
        assert (again.claim.worker, again.claim.start) == ("b", 0)
        assert again.claim.fence == 1  # fresh claim, not a steal
