"""Lease-file protocol: heartbeat liveness judged by the filesystem clock."""

import os
import pickle

import pytest

from repro.coord import CoordError, WorkerLease, fs_now, list_leases
from repro.coord.lease import (
    ensure_coord_dirs,
    lease_dir,
    read_lease,
    validated_worker_id,
)


class TestWorkerId:
    @pytest.mark.parametrize("worker", ["w1", "host-3_a", "ABC_123"])
    def test_accepts_flat_names(self, worker):
        assert validated_worker_id(worker) == worker

    @pytest.mark.parametrize("worker", ["", "a/b", "a b", "dot.dot", "é"])
    def test_rejects_path_hostile_names(self, worker):
        with pytest.raises(CoordError, match="invalid worker id"):
            validated_worker_id(worker)


class TestFsNow:
    def test_monotone_enough_for_staleness(self, tmp_path):
        first = fs_now(tmp_path)
        second = fs_now(tmp_path)
        assert second >= first

    def test_creates_coord_dirs(self, tmp_path):
        fs_now(tmp_path)
        assert os.path.isdir(lease_dir(tmp_path))


class TestLeaseLifecycle:
    def test_acquire_write_release_roundtrip(self, tmp_path):
        lease = WorkerLease(tmp_path, "alpha", expiry_s=30.0)
        with lease:
            info = list_leases(tmp_path)["alpha"]
            assert info.live
            assert not info.released
            assert info.expiry_s == 30.0
        info = list_leases(tmp_path)["alpha"]
        assert info.released
        assert not info.live

    def test_heartbeat_advances_the_beat_counter(self, tmp_path):
        with WorkerLease(tmp_path, "alpha", expiry_s=0.1) as lease:
            deadline = 200
            while list_leases(tmp_path)["alpha"].beat == 0 and deadline:
                deadline -= 1
                lease._stop.wait(0.01)
            assert list_leases(tmp_path)["alpha"].beat > 0

    def test_progress_tallies_surface_in_the_file(self, tmp_path):
        with WorkerLease(tmp_path, "alpha") as lease:
            lease.note_steal()
            lease.note_trials(3)
            lease.note_trials(2)
            info = list_leases(tmp_path)["alpha"]
            assert (info.steals, info.trials) == (1, 5)

    def test_duplicate_live_id_refused(self, tmp_path):
        with WorkerLease(tmp_path, "alpha"):
            with pytest.raises(CoordError, match="already holds a live lease"):
                WorkerLease(tmp_path, "alpha").acquire()

    def test_released_id_is_reusable(self, tmp_path):
        with WorkerLease(tmp_path, "alpha"):
            pass
        with WorkerLease(tmp_path, "alpha"):
            assert list_leases(tmp_path)["alpha"].live

    def test_expired_id_is_reusable(self, tmp_path):
        lease = WorkerLease(tmp_path, "alpha", expiry_s=5.0)
        lease.acquire()
        lease._stop.set()  # simulate a crash: heartbeat dies, no release
        lease._thread.join()
        _backdate(tmp_path, "alpha", by=60.0)
        with WorkerLease(tmp_path, "alpha", expiry_s=5.0):
            assert list_leases(tmp_path)["alpha"].live

    def test_release_is_idempotent_and_reentrant(self, tmp_path):
        lease = WorkerLease(tmp_path, "alpha")
        lease.release()  # never acquired: no-op, no file
        assert list_leases(tmp_path) == {}
        lease.acquire()
        lease.release()
        lease.release()
        assert list_leases(tmp_path)["alpha"].released


class TestStaleness:
    def test_frozen_mtime_goes_stale(self, tmp_path):
        """The SIGKILL signature: file stops moving, age outgrows expiry."""
        lease = WorkerLease(tmp_path, "alpha", expiry_s=5.0)
        lease.acquire()
        lease._stop.set()
        lease._thread.join()
        assert list_leases(tmp_path)["alpha"].live  # fresh corpse, still live
        _backdate(tmp_path, "alpha", by=60.0)
        info = list_leases(tmp_path)["alpha"]
        assert not info.live
        assert info.age_s > info.expiry_s

    def test_unreadable_lease_reads_as_absent(self, tmp_path):
        ensure_coord_dirs(tmp_path)
        path = os.path.join(lease_dir(tmp_path), "junk.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert read_lease(path, fs_now(tmp_path)) is None
        assert list_leases(tmp_path) == {}

    def test_bad_expiry_rejected(self, tmp_path):
        with pytest.raises(CoordError, match="expiry"):
            WorkerLease(tmp_path, "alpha", expiry_s=0.0)


def test_lease_is_not_picklable(tmp_path):
    with pytest.raises(TypeError, match="not picklable"):
        pickle.dumps(WorkerLease(tmp_path, "alpha"))


def _backdate(store_path, worker, by):
    path = os.path.join(lease_dir(store_path), f"{worker}.json")
    stamp = os.stat(path).st_mtime - by
    os.utime(path, (stamp, stamp))
