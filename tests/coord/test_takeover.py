"""The crash-takeover acceptance: SIGKILL a worker, a peer finishes.

A coordinated worker is killed -9 mid-trial — lease frozen, claim
orphaned, journal segment possibly ending in a torn line.  A second
worker must (a) notice the corpse via lease staleness, (b) steal its
claimed range under an incremented fencing token, and (c) drain the
store to records — and report/atlas bytes — identical to a serial run
that never crashed.  No journaled trial may be lost, and no trial index
may resolve to two *different* records.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import main
from repro.coord import CampaignWorker, list_claims, list_leases
from repro.coord.lease import lease_dir
from repro.store import CampaignStore

from tests.coord.conftest import (
    RATES,
    TRIALS,
    fault_models,
    make_campaign,
    make_store,
)

CHILD = os.path.join(os.path.dirname(__file__), "takeover_child.py")


def _spawn_victim(store_dir, worker_id="victim", nap_s=0.25):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.dirname(os.path.dirname(repro.__file__))]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, CHILD, str(store_dir), worker_id, str(nap_s)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_for_progress(store_dir, child, minimum=1, timeout_s=60.0):
    """Block until the victim has journaled >= minimum trials *and*
    holds a claim with work left — so the kill orphans a range a peer
    must steal (not one that is about to be garbage-collected)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if child.poll() is not None:
            _, err = child.communicate()
            pytest.fail(f"victim exited early ({child.returncode}): {err.decode()}")
        progress = CampaignStore.scan_progress(store_dir)
        if progress.segments.get("victim", 0) >= minimum and any(
            handle.claim.worker == "victim"
            and set(handle.claim.indices())
            - progress.journaled(handle.claim.config)
            for handle in list_claims(store_dir)
        ):
            return
        time.sleep(0.05)
    pytest.fail("victim made no journal progress in time")


def _backdate_lease(store_dir, worker, by=60.0):
    path = os.path.join(lease_dir(store_dir), f"{worker}.json")
    stamp = os.stat(path).st_mtime - by
    os.utime(path, (stamp, stamp))


def _report_bytes(store_dir, out_dir):
    code = main(
        [
            "campaign",
            "report",
            "--store",
            str(store_dir),
            "--baseline",
            "0.9",
            "--out",
            str(out_dir),
        ]
    )
    assert code == 0
    return (
        (out_dir / "report.md").read_bytes(),
        (out_dir / "atlas.json").read_bytes(),
    )


def test_sigkilled_worker_is_taken_over_bit_identically(tmp_path, capsys):
    store_dir = tmp_path / "store"
    make_store(store_dir)

    child = _spawn_victim(store_dir)
    try:
        _wait_for_progress(store_dir, child)
        child.kill()  # SIGKILL: no release, no flush, maybe a torn line
        child.wait()
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    journaled_by_victim = CampaignStore.scan_progress(store_dir).segments[
        "victim"
    ]
    assert journaled_by_victim >= 1

    # The victim's lease froze at death; a fresh corpse still reads as
    # live, so backdate its mtime to model the expiry window passing.
    _backdate_lease(store_dir, "victim")
    assert not list_leases(store_dir)["victim"].live

    with make_campaign() as campaign:
        rescuer = CampaignWorker(
            campaign,
            store_dir,
            fault_models(),
            worker_id="rescuer",
            chunk=3,
            expiry_s=5.0,
            poll_s=0.05,
        )
        report = rescuer.run()
    assert report["complete"]
    assert report["steals"] >= 1  # the victim's claimed range was stolen

    # No lost trials, no divergent duplicates: the fold covers every
    # index exactly, and opening the store audits for conflicts.
    progress = CampaignStore.scan_progress(store_dir)
    with CampaignStore.open(store_dir) as store:
        keys = store.config_keys()
        for key in keys:
            assert sorted(store.records(key)) == list(range(TRIALS))
    assert progress.segments["victim"] >= journaled_by_victim
    assert progress.segments["rescuer"] >= 1

    # Byte-identity vs a serial run that never crashed.
    serial_dir = tmp_path / "serial"
    with make_campaign() as campaign:
        with CampaignStore.for_campaign(serial_dir, campaign) as store:
            for fault_model in fault_models(RATES):
                campaign.run(fault_model, store=store)
    coord_report = _report_bytes(store_dir, tmp_path / "coord-out")
    serial_report = _report_bytes(serial_dir, tmp_path / "serial-out")
    capsys.readouterr()  # swallow the CLI report dumps
    assert coord_report == serial_report

    # The stolen claim carried a bumped fencing token while in flight;
    # by completion every claim file has been collected.
    assert os.listdir(os.path.join(store_dir, "coord", "claims")) == []

    # Worker names live in lease/segment *file names*, never in record
    # bytes — spot-check the victim's segment for identity-clean lines.
    segment = store_dir / "trials.victim.jsonl"
    first = segment.read_text().splitlines()[0]
    assert "victim" not in json.dumps(json.loads(first))
