"""Status views: coord_status payload, gauges, rendering, HTTP front."""

import json
import urllib.error
import urllib.request

import pytest

from repro.coord import (
    WatchApp,
    WorkerLease,
    coord_status,
    render_watch,
    update_gauges,
)
from repro.coord.scheduler import RangeScheduler
from repro.coord.watch import RateMeter
from repro.obs.metrics import default_registry

from tests.coord.conftest import RATES, TRIALS
from tests.coord.test_worker import run_worker


@pytest.fixture(autouse=True)
def _clean_registry():
    default_registry().reset()
    yield
    default_registry().reset()


class TestCoordStatus:
    def test_plain_store_has_empty_coord_sections(self, store_path):
        status = coord_status(store_path)
        assert status["workers"] == []
        assert status["claims"] == []
        assert status["workers_live"] == 0
        assert status["steals"] == 0

    def test_drained_store_reports_workers_and_totals(self, store_path):
        run_worker(store_path, "alpha")
        status = coord_status(store_path)
        assert status["complete"]
        (row,) = status["workers"]
        assert row["worker"] == "alpha"
        assert row["released"] and not row["live"]
        assert row["trials"] == len(RATES) * TRIALS
        assert status["workers_live"] == 0

    def test_inflight_claims_and_live_leases_surface(self, store_path):
        with WorkerLease(store_path, "alpha"):
            scheduler = RangeScheduler(
                store_path,
                "alpha",
                trials=TRIALS,
                chunk=3,
                configs=["::rate=1e-03"],
            )
            scheduler.next_claim({}, {})
            status = coord_status(store_path)
        (claim,) = status["claims"]
        assert claim["worker"] == "alpha"
        assert (claim["start"], claim["stop"], claim["fence"]) == (0, 3, 1)
        (row,) = status["workers"]
        assert row["live"]
        assert status["workers_live"] == 1


class TestGauges:
    def test_update_gauges_feeds_worker_series(self, store_path):
        run_worker(store_path, "alpha")
        update_gauges(coord_status(store_path))
        snapshot = default_registry().snapshot()
        trials = snapshot["repro_campaign_worker_trials"]["series"]
        (series,) = trials
        assert series["labels"]["worker"] == "alpha"
        assert series["value"] == float(len(RATES) * TRIALS)
        live = snapshot["repro_campaign_worker_live"]["series"]
        assert live[0]["value"] == 0.0  # released


class TestRendering:
    def test_render_covers_configs_workers_claims(self, store_path):
        run_worker(store_path, "alpha")
        text = render_watch(coord_status(store_path), rate=2.5)
        assert "(complete)" in text
        assert "2.5 trials/s" in text
        assert "config ::rate=0.001" in text
        assert "worker alpha: released" in text

    def test_render_notes_single_writer_stores(self, store_path):
        text = render_watch(coord_status(store_path))
        assert "workers: none (single-writer store)" in text

    def test_rate_meter_needs_two_polls(self):
        meter = RateMeter()
        assert meter.update(0) is None
        assert meter.update(10) is not None


class TestHttpFront:
    def test_watch_app_serves_campaign_status(self, store_path):
        from repro.serve.http import ReproServer

        run_worker(store_path, "alpha")
        server = ReproServer(WatchApp(store_path))
        server.start()
        try:
            status = json.load(
                urllib.request.urlopen(server.url + "/v1/campaign")
            )
            assert status["complete"]
            assert status["workers"][0]["worker"] == "alpha"
            health = json.load(
                urllib.request.urlopen(server.url + "/v1/healthz")
            )
            assert health["status"] == "ok"
            assert health["journaled"] == len(RATES) * TRIALS
            prom = (
                urllib.request.urlopen(
                    server.url + "/v1/metrics?format=prometheus"
                )
                .read()
                .decode()
            )
            assert "repro_campaign_worker_trials" in prom
        finally:
            server.stop()

    def test_inference_routes_404_on_the_watch_front(self, store_path):
        from repro.serve.http import ReproServer

        server = ReproServer(WatchApp(store_path))
        server.start()
        try:
            for path, method, body in (
                ("/v1/models", "GET", None),
                ("/v1/predict", "POST", b"{}"),
            ):
                request = urllib.request.Request(
                    server.url + path, data=body, method=method
                )
                with pytest.raises(urllib.error.HTTPError) as caught:
                    urllib.request.urlopen(request)
                assert caught.value.code == 404
        finally:
            server.stop()
