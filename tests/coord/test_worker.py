"""The coordinated drain loop: admission, cooperation, byte-identity."""

import pickle
import threading

import pytest

from repro.coord import CampaignWorker, CoordError, list_claims
from repro.store import CampaignStore, StoreError, config_key

from tests.coord.conftest import (
    RATES,
    TRIALS,
    fault_models,
    make_campaign,
    make_store,
)


def run_worker(store_path, worker_id, **kwargs):
    with make_campaign() as campaign:
        worker = CampaignWorker(
            campaign,
            store_path,
            fault_models(),
            worker_id=worker_id,
            chunk=kwargs.pop("chunk", 3),
            **kwargs,
        )
        return worker.run()


def reference_records(tmp_path):
    """The serial ground truth: one plain campaign.run per config."""
    ref_dir = tmp_path / "reference"
    with make_campaign() as campaign:
        with CampaignStore.for_campaign(ref_dir, campaign) as store:
            for fault_model in fault_models():
                campaign.run(fault_model, store=store)
    return open_records(ref_dir)


def open_records(store_path):
    with CampaignStore.open(store_path) as store:
        return {
            key: store.records(key) for key in store.config_keys()
        }


class TestSingleWorker:
    def test_drains_to_completion(self, tmp_path, store_path):
        report = run_worker(store_path, "alpha")
        assert report["complete"]
        assert not report["stopped"]
        assert report["trials"] == len(RATES) * TRIALS
        assert report["steals"] == 0
        assert list_claims(store_path) == []  # every claim handed back

    def test_records_equal_serial_run(self, tmp_path, store_path):
        run_worker(store_path, "alpha")
        assert open_records(store_path) == reference_records(tmp_path)

    def test_budget_stops_then_resume_completes(self, tmp_path, store_path):
        first = run_worker(store_path, "alpha", max_trials=5)
        assert first["stopped"] and not first["complete"]
        assert first["trials"] == 5
        second = run_worker(store_path, "alpha2")
        assert second["complete"]
        assert second["trials"] == len(RATES) * TRIALS - 5
        assert open_records(store_path) == reference_records(tmp_path)

    def test_complete_store_is_a_cheap_noop(self, store_path):
        run_worker(store_path, "alpha")
        report = run_worker(store_path, "beta")
        assert report["complete"]
        assert (report["trials"], report["claims"]) == (0, 0)


class TestTwoWorkers:
    def test_concurrent_workers_cooperate_bit_identically(
        self, tmp_path, store_path
    ):
        reports = {}

        def drain(name):
            reports[name] = run_worker(store_path, name, poll_s=0.05)

        threads = [
            threading.Thread(target=drain, args=(name,))
            for name in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(report["complete"] for report in reports.values())
        total = sum(report["trials"] for report in reports.values())
        # Benign races around claim hand-off may duplicate a trial; the
        # fold dedups equal records, so the journals never under-cover.
        assert total >= len(RATES) * TRIALS
        assert open_records(store_path) == reference_records(tmp_path)


class TestAdmission:
    def test_sharded_campaign_rejected(self, store_path):
        with make_campaign(shard=(0, 2)) as campaign:
            with pytest.raises(CoordError, match="unsharded"):
                CampaignWorker(campaign, store_path, fault_models())

    def test_unregistered_config_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        make_store(store_dir, rates=RATES[:1])  # sweep half-registered
        with make_campaign() as campaign:
            worker = CampaignWorker(campaign, store_dir, fault_models())
            with pytest.raises(CoordError, match="not registered"):
                worker.run()

    def test_wrong_identity_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        make_store(store_dir)
        with make_campaign(seed=99) as campaign:
            worker = CampaignWorker(campaign, store_dir, fault_models())
            with pytest.raises(StoreError):
                worker.run()

    def test_bad_worker_id_rejected_up_front(self, store_path):
        with make_campaign() as campaign:
            with pytest.raises(CoordError, match="invalid worker id"):
                CampaignWorker(
                    campaign, store_path, fault_models(), worker_id="a/b"
                )


class TestStopRequest:
    def test_stop_hands_back_cleanly(self, store_path):
        with make_campaign() as campaign:
            worker = CampaignWorker(
                campaign,
                store_path,
                fault_models(),
                worker_id="alpha",
                chunk=2,
            )
            worker.request_stop()  # before run(): loop exits immediately
            report = worker.run()
        assert report["stopped"] and not report["complete"]
        assert report["trials"] == 0
        assert list_claims(store_path) == []

    def test_segments_attribute_trials_to_workers(self, store_path):
        run_worker(store_path, "alpha", max_trials=5)
        run_worker(store_path, "beta")
        progress = CampaignStore.scan_progress(store_path)
        assert progress.segments["alpha"] == 5
        assert progress.segments["beta"] == len(RATES) * TRIALS - 5
        key = config_key("", fault_models()[0].describe())
        assert progress.journaled(key) == set(range(TRIALS))


def test_worker_is_not_picklable(store_path):
    with make_campaign() as campaign:
        worker = CampaignWorker(campaign, store_path, fault_models())
        with pytest.raises(TypeError, match="not picklable"):
            pickle.dumps(worker)
