"""GBReLU / FitReLU-Naive semantics (paper Eqs. 4 and 5)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import BoundedReLU, FitReLUNaive, GBReLU
from repro.errors import ConfigurationError


class TestGBReLU:
    def test_zero_mode_piecewise(self):
        """Eq. 4: 0 above the bound, identity in (0, λ], 0 below 0."""
        act = GBReLU(2.0, mode="zero")
        x = Tensor([-1.0, 0.5, 2.0, 2.1, 1000.0])
        assert act(x).data.tolist() == [0.0, 0.5, 2.0, 0.0, 0.0]

    def test_saturate_mode_truncates(self):
        """Ranger semantics: out-of-bound values clamp to λ and propagate."""
        act = GBReLU(2.0, mode="saturate")
        x = Tensor([-1.0, 0.5, 2.0, 2.1, 1000.0])
        assert act(x).data.tolist() == [0.0, 0.5, 2.0, 2.0, 2.0]

    def test_faulty_magnitude_squashed(self):
        """The Q15.16 worst case (±32768) must not propagate."""
        act = GBReLU(4.0, mode="zero")
        out = act(Tensor([32767.0, -32768.0]))
        assert out.data.tolist() == [0.0, 0.0]

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            BoundedReLU(1.0, mode="clamp")

    def test_non_positive_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            GBReLU(0.0)

    def test_bound_is_parameter_without_grad(self):
        act = GBReLU(1.5)
        params = dict(act.named_parameters())
        assert "bound" in params
        assert not params["bound"].requires_grad

    def test_gradient_passes_in_range(self):
        act = GBReLU(2.0, mode="zero")
        x = Tensor([1.0, 3.0], requires_grad=True)
        act(x).sum().backward()
        assert x.grad.tolist() == [1.0, 0.0]

    def test_saturate_gradient_zero_above_bound(self):
        act = GBReLU(2.0, mode="saturate")
        x = Tensor([1.0, 3.0], requires_grad=True)
        act(x).sum().backward()
        assert x.grad.tolist() == [1.0, 0.0]


class TestFitReLUNaive:
    def test_per_neuron_bounds(self):
        """Eq. 5: each neuron applies its own λᵢ."""
        act = FitReLUNaive(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        x = Tensor([1.5, 1.5, 1.5])
        assert act(x).data.tolist() == [0.0, 1.5, 1.5]

    def test_broadcast_over_batch(self):
        act = FitReLUNaive(np.array([1.0, 2.0], dtype=np.float32))
        x = Tensor(np.array([[0.5, 0.5], [1.5, 1.5]], dtype=np.float32))
        assert act(x).data.tolist() == [[0.5, 0.5], [0.0, 1.5]]

    def test_conv_shape_bounds(self):
        bounds = np.full((2, 3, 3), 1.0, dtype=np.float32)
        act = FitReLUNaive(bounds)
        x = Tensor(np.full((4, 2, 3, 3), 2.0, dtype=np.float32))
        assert float(act(x).data.max()) == 0.0

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            FitReLUNaive(np.empty(0, dtype=np.float32))

    def test_bound_count(self):
        act = FitReLUNaive(np.ones((4, 2, 2), dtype=np.float32))
        assert act.bound_count == 16
