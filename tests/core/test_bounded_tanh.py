"""BoundedTanh: the Tanh-swap baseline (Hong et al. [17])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.autograd import Tensor
from repro.core import BoundedTanh, ProtectionConfig, protect_model
from repro.core.surgery import bound_modules, bound_parameter_count, restore_relu
from repro.errors import ConfigurationError


def _x(values):
    return Tensor(np.asarray(values, dtype=np.float32))


class TestBoundedTanh:
    def test_near_identity_for_small_positives(self):
        act = BoundedTanh(4.0)
        x = _x([0.01, 0.05, 0.1])
        np.testing.assert_allclose(act(x).data, x.data, atol=1e-3)

    def test_rectifies_negatives(self):
        """Post-hoc swap on a ReLU net must keep the ReLU regime."""
        act = BoundedTanh(4.0)
        out = act(_x([-0.01, -1.0, -100.0])).data
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0], atol=1e-6)

    def test_saturates_at_bound(self):
        act = BoundedTanh(2.0)
        out = act(_x([100.0, -100.0])).data
        np.testing.assert_allclose(out, [2.0, 0.0], atol=1e-4)

    def test_compresses_near_bound(self):
        """The baseline's clean-accuracy tax: tanh(1) ≈ 0.76."""
        act = BoundedTanh(3.0)
        out = float(act(_x([3.0])).data[0])
        assert out == pytest.approx(3.0 * np.tanh(1.0), abs=1e-4)

    def test_monotone(self):
        act = BoundedTanh(3.0)
        xs = np.linspace(-20, 20, 201).astype(np.float32)
        ys = act(_x(xs)).data
        assert np.all(np.diff(ys) >= 0)

    def test_faulty_value_truncated_not_zeroed(self):
        """The Ranger-like failure mode: a huge faulty value propagates
        as the bound instead of being squashed to 0 (Clip-Act)."""
        act = BoundedTanh(2.5)
        out = float(act(_x([1e4])).data[0])
        assert out == pytest.approx(2.5, abs=1e-3)
        assert out > 0

    def test_per_neuron_bounds_broadcast(self):
        act = BoundedTanh(np.array([1.0, 2.0, 4.0], dtype=np.float32))
        out = act(_x([[100.0, 100.0, 100.0]])).data
        np.testing.assert_allclose(out[0], [1.0, 2.0, 4.0], atol=1e-3)

    def test_monotone_non_decreasing_everywhere(self):
        act = BoundedTanh(2.0)
        xs = np.linspace(-5, 50, 301).astype(np.float32)
        ys = act(_x(xs)).data
        assert np.all(np.diff(ys) >= -1e-7)

    def test_bound_count(self):
        assert BoundedTanh(1.0).bound_count == 1
        assert BoundedTanh(np.ones(7, dtype=np.float32)).bound_count == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ConfigurationError):
            BoundedTanh(0.0)
        with pytest.raises(ConfigurationError):
            BoundedTanh(np.array([1.0, -2.0]))

    def test_not_trainable_by_default(self):
        assert BoundedTanh(1.0).bound.requires_grad is False
        assert BoundedTanh(1.0, trainable=True).bound.requires_grad is True

    def test_repr_mentions_bound(self):
        assert "bound=" in repr(BoundedTanh(1.5))

    @given(
        bound=st.floats(min_value=0.1, max_value=50.0),
        x=st.floats(min_value=-1000.0, max_value=1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_always_in_zero_to_bound(self, bound, x):
        act = BoundedTanh(bound)
        out = float(act(_x([x])).data[0])
        assert -1e-6 <= out <= bound + 1e-4


class TestTanhProtectionMethod:
    def test_protect_model_with_tanh(self, trained_model, train_loader):
        report = protect_model(
            trained_model, train_loader, ProtectionConfig(method="tanh")
        )
        assert report.method == "tanh"
        assert report.granularity == "layer"
        assert len(report.replaced_sites) > 0
        modules = bound_modules(trained_model)
        assert all(isinstance(m, BoundedTanh) for m in modules.values())
        # Layer-global: one bound word per site.
        assert bound_parameter_count(trained_model) == len(report.replaced_sites)

    def test_tanh_keeps_clean_accuracy(
        self, trained_model, train_loader, test_loader, trained_state
    ):
        from repro.core.training import evaluate_accuracy

        protect_model(trained_model, train_loader, ProtectionConfig(method="tanh"))
        accuracy = evaluate_accuracy(trained_model, test_loader)
        # The tanh compression taxes clean accuracy more than hard-clip
        # schemes (tanh(1) ≈ 0.76 at the layer max) but must stay usable.
        assert accuracy > trained_state["accuracy"] - 0.15

    def test_restore_relu_covers_tanh(self, trained_model, train_loader):
        protect_model(trained_model, train_loader, ProtectionConfig(method="tanh"))
        restored = restore_relu(trained_model)
        assert restored > 0
        assert not bound_modules(trained_model)

    def test_tanh_bounds_live_in_fault_space(self, trained_model, train_loader):
        from repro.fault import FaultInjector
        from repro.quant import quantize_module

        protect_model(trained_model, train_loader, ProtectionConfig(method="tanh"))
        quantize_module(trained_model)
        injector = FaultInjector(trained_model)
        assert any(name.endswith(".bound") for name in injector.parameter_names)


class TestTrainableTanhPostTraining:
    def test_post_trainer_tunes_tanh_bounds(
        self, trained_model, train_loader, test_loader
    ):
        """Extension path: trainable BoundedTanh λ through the Eq. 10 loop."""
        from repro.core import BoundPostTrainer, PostTrainingConfig
        from repro.core.surgery import find_activation_sites
        from repro.core.profiler import profile_activations

        profile = profile_activations(trained_model, train_loader, max_batches=2)
        for path in find_activation_sites(trained_model):
            bound = float(profile.bounds(path, granularity="layer").max())
            trained_model.set_submodule(path, BoundedTanh(bound, trainable=True))

        trainer = BoundPostTrainer(
            trained_model,
            PostTrainingConfig(epochs=1, lr=0.01, zeta=0.1, delta=0.5, max_batches=3),
        )
        before = [b.data.copy() for b in trainer.bound_parameters]
        report = trainer.run(train_loader, test_loader, reference_accuracy=1.0)
        assert report.epochs_run == 1
        changed = any(
            not np.array_equal(b.data, prev)
            for b, prev in zip(trainer.bound_parameters, before)
        )
        assert changed

    def test_frozen_tanh_bounds_rejected(self, trained_model, train_loader):
        """Non-trainable tanh protection has no ΘR — the trainer says so."""
        from repro.core import BoundPostTrainer

        protect_model(trained_model, train_loader, ProtectionConfig(method="tanh"))
        with pytest.raises(ConfigurationError, match="trainable activation bounds"):
            BoundPostTrainer(trained_model)
