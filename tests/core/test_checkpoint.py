"""Protected-model checkpoints: exact round trips for every scheme."""

import numpy as np
import pytest

from repro.core import (
    BoundedTanh,
    FitReLU,
    ProtectionConfig,
    load_protected,
    protect_model,
    save_protected,
)
from repro.core.bounded_relu import FitReLUNaive, GBReLU
from repro.core.surgery import bound_modules
from repro.errors import ConfigurationError
from repro.models.registry import build_model
from repro.utils.serialization import save_state

NUM_CLASSES = 10
IMAGE_SIZE = 16


def _builder():
    return build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )


def _eval_batch(loader):
    inputs, _ = next(iter(loader))
    return inputs


@pytest.fixture
def protected(trained_model, train_loader):
    def _protect(method, **overrides):
        protect_model(
            trained_model,
            train_loader,
            ProtectionConfig(method=method, **overrides),
        )
        return trained_model

    return _protect


class TestRoundTrip:
    @pytest.mark.parametrize(
        "method", ["fitact", "fitact-naive", "clipact", "ranger", "tanh"]
    )
    def test_outputs_bit_identical(
        self, protected, method, tmp_path, test_loader
    ):
        model = protected(method)
        path = tmp_path / f"{method}.npz"
        save_protected(path, model, meta={"method": method})

        reloaded, meta = load_protected(path, _builder)
        assert meta["method"] == method

        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(model(x).data, reloaded(x).data)

    def test_site_classes_preserved(self, protected, tmp_path):
        model = protected("fitact", k=25.0, slope_mode="absolute")
        path = tmp_path / "fitact.npz"
        save_protected(path, model)
        reloaded, _ = load_protected(path, _builder)
        for site_path, module in bound_modules(model).items():
            twin = bound_modules(reloaded)[site_path]
            assert type(twin) is type(module)
            if isinstance(module, FitReLU):
                assert twin.k == module.k == 25.0
                assert twin.slope_mode == module.slope_mode == "absolute"
            np.testing.assert_array_equal(twin.bound.data, module.bound.data)

    def test_mixed_scheme_model(self, trained_model, tmp_path, test_loader):
        """Hand-assembled protection mixing every activation class."""
        sites = [
            path
            for path, module in trained_model.named_modules()
            if type(module).__name__ == "ReLU"
        ]
        assert len(sites) >= 2
        trained_model.set_submodule(sites[0], GBReLU(3.0, mode="saturate"))
        trained_model.set_submodule(sites[1], FitReLUNaive(np.full(1, 2.0, np.float32)))
        if len(sites) > 2:
            trained_model.set_submodule(sites[2], BoundedTanh(5.0))
        path = tmp_path / "mixed.npz"
        save_protected(path, trained_model)
        reloaded, _ = load_protected(path, _builder)
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(trained_model(x).data, reloaded(x).data)

    def test_unprotected_model_roundtrip(self, trained_model, tmp_path, test_loader):
        path = tmp_path / "plain.npz"
        save_protected(path, trained_model)
        reloaded, meta = load_protected(path, _builder)
        assert meta == {}
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(trained_model(x).data, reloaded(x).data)

    def test_meta_json_types(self, protected, tmp_path):
        model = protected("clipact")
        path = tmp_path / "meta.npz"
        save_protected(
            path,
            model,
            meta={"accuracy": 0.93, "preset": "quick", "rates": [1e-7, 1e-6]},
        )
        _, meta = load_protected(path, _builder)
        assert meta["accuracy"] == pytest.approx(0.93)
        assert meta["preset"] == "quick"
        assert meta["rates"] == [1e-7, 1e-6]


class TestErrors:
    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "bare.npz"
        save_state(path, {"weight": np.zeros(3)})
        with pytest.raises(ConfigurationError, match="not a protected-model"):
            load_protected(path, _builder)

    def test_wrong_builder_architecture(self, protected, tmp_path):
        from repro.errors import ReproError

        model = protected("clipact")
        path = tmp_path / "arch.npz"
        save_protected(path, model)

        def tiny_builder():
            return build_model(
                "lenet", num_classes=2, scale=0.5, image_size=8, seed=0
            )

        with pytest.raises(ReproError):
            load_protected(path, tiny_builder)

    def test_post_trained_bounds_survive(
        self, protected, tmp_path, train_loader, test_loader
    ):
        """Post-training mutates λ in place; the checkpoint must carry the
        tuned values, not the profiled initialisation."""
        from repro.core import BoundPostTrainer, PostTrainingConfig

        model = protected("fitact")
        BoundPostTrainer(
            model, PostTrainingConfig(epochs=1, lr=0.01, zeta=0.1, delta=0.5)
        ).run(train_loader, test_loader, reference_accuracy=1.0)
        before = {
            path: m.bound.data.copy() for path, m in bound_modules(model).items()
        }
        path = tmp_path / "tuned.npz"
        save_protected(path, model)
        reloaded, _ = load_protected(path, _builder)
        for site_path, bounds in before.items():
            np.testing.assert_array_equal(
                bound_modules(reloaded)[site_path].bound.data, bounds
            )
