"""Protected-model checkpoints: exact round trips for every scheme."""

import numpy as np
import pytest

from repro.core import (
    BoundedTanh,
    FitReLU,
    ProtectionConfig,
    load_protected,
    load_protected_auto,
    protect_model,
    save_protected,
)
from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.surgery import bound_modules
from repro.errors import ConfigurationError
from repro.models.registry import build_model
from repro.utils.serialization import load_state, save_state

NUM_CLASSES = 10
IMAGE_SIZE = 16


def _builder():
    return build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )


def _eval_batch(loader):
    inputs, _ = next(iter(loader))
    return inputs


@pytest.fixture
def protected(trained_model, train_loader):
    def _protect(method, **overrides):
        protect_model(
            trained_model,
            train_loader,
            ProtectionConfig(method=method, **overrides),
        )
        return trained_model

    return _protect


class TestRoundTrip:
    @pytest.mark.parametrize(
        "method", ["fitact", "fitact-naive", "clipact", "ranger", "tanh"]
    )
    def test_outputs_bit_identical(
        self, protected, method, tmp_path, test_loader
    ):
        model = protected(method)
        path = tmp_path / f"{method}.npz"
        save_protected(path, model, meta={"method": method})

        reloaded, meta = load_protected(path, _builder)
        assert meta["method"] == method

        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(model(x).data, reloaded(x).data)

    def test_site_classes_preserved(self, protected, tmp_path):
        model = protected("fitact", k=25.0, slope_mode="absolute")
        path = tmp_path / "fitact.npz"
        save_protected(path, model)
        reloaded, _ = load_protected(path, _builder)
        for site_path, module in bound_modules(model).items():
            twin = bound_modules(reloaded)[site_path]
            assert type(twin) is type(module)
            if isinstance(module, FitReLU):
                assert twin.k == module.k == 25.0
                assert twin.slope_mode == module.slope_mode == "absolute"
            np.testing.assert_array_equal(twin.bound.data, module.bound.data)

    def test_mixed_scheme_model(self, trained_model, tmp_path, test_loader):
        """Hand-assembled protection mixing every activation class."""
        sites = [
            path
            for path, module in trained_model.named_modules()
            if type(module).__name__ == "ReLU"
        ]
        assert len(sites) >= 2
        trained_model.set_submodule(sites[0], GBReLU(3.0, mode="saturate"))
        trained_model.set_submodule(sites[1], FitReLUNaive(np.full(1, 2.0, np.float32)))
        if len(sites) > 2:
            trained_model.set_submodule(sites[2], BoundedTanh(5.0))
        path = tmp_path / "mixed.npz"
        save_protected(path, trained_model)
        reloaded, _ = load_protected(path, _builder)
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(trained_model(x).data, reloaded(x).data)

    def test_unprotected_model_roundtrip(self, trained_model, tmp_path, test_loader):
        path = tmp_path / "plain.npz"
        save_protected(path, trained_model)
        reloaded, meta = load_protected(path, _builder)
        assert meta == {}
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(trained_model(x).data, reloaded(x).data)

    def test_meta_json_types(self, protected, tmp_path):
        model = protected("clipact")
        path = tmp_path / "meta.npz"
        save_protected(
            path,
            model,
            meta={"accuracy": 0.93, "preset": "quick", "rates": [1e-7, 1e-6]},
        )
        _, meta = load_protected(path, _builder)
        assert meta["accuracy"] == pytest.approx(0.93)
        assert meta["preset"] == "quick"
        assert meta["rates"] == [1e-7, 1e-6]


class TestPerClassRoundTrip:
    """Direct coverage for every protected-site class the format knows.

    The method-level parametrisation above exercises whatever classes
    the protection pipeline happens to pick; these pin the round trip of
    each activation class (and its config knobs) explicitly.
    """

    # Bounds are scalar/size-1 so they broadcast at any site; real
    # per-neuron shapes are covered by the pipeline methods above.
    SITE_BUILDERS = {
        "gbrelu-zero": lambda: GBReLU(3.5, mode="zero"),
        "gbrelu-saturate": lambda: GBReLU(4.25, mode="saturate"),
        "fitrelu-naive": lambda: FitReLUNaive(np.full(1, 1.75, np.float32)),
        "bounded-relu-saturate": lambda: BoundedReLU(
            np.full(1, 2.5, np.float32), mode="saturate"
        ),
        "bounded-tanh-fixed": lambda: BoundedTanh(6.0, trainable=False),
        "bounded-tanh-trainable": lambda: BoundedTanh(
            np.full(1, 3.0, np.float32), trainable=True
        ),
        "fitrelu-trainable": lambda: FitReLU(
            np.full(1, 1.25, np.float32),
            k=30.0,
            slope_mode="relative",
            trainable=True,
        ),
        "fitrelu-frozen": lambda: FitReLU(
            np.full(1, 2.0, np.float32),
            k=15.0,
            slope_mode="absolute",
            trainable=False,
        ),
    }

    @pytest.mark.parametrize("site_kind", sorted(SITE_BUILDERS))
    def test_single_site_round_trip(
        self, trained_model, tmp_path, test_loader, site_kind
    ):
        relu_paths = [
            path
            for path, module in trained_model.named_modules()
            if type(module).__name__ == "ReLU"
        ]
        site = self.SITE_BUILDERS[site_kind]()
        trained_model.set_submodule(relu_paths[0], site)
        path = tmp_path / f"{site_kind}.npz"
        save_protected(path, trained_model)

        reloaded, _ = load_protected(path, _builder)
        twin = bound_modules(reloaded)[relu_paths[0]]
        assert type(twin) is type(site)
        np.testing.assert_array_equal(twin.bound.data, site.bound.data)
        assert twin.bound.requires_grad == site.bound.requires_grad
        if isinstance(site, FitReLU):
            assert twin.k == site.k
            assert twin.slope_mode == site.slope_mode
        elif isinstance(site, BoundedReLU):
            assert twin.mode == site.mode
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(trained_model(x).data, reloaded(x).data)


class TestSavePath:
    def test_save_protected_returns_written_path(self, trained_model, tmp_path):
        bare = tmp_path / "no-suffix"
        written = save_protected(bare, trained_model)
        assert written == f"{bare}.npz"
        assert not bare.exists()
        reloaded, _ = load_protected(written, _builder)
        assert reloaded is not None

    def test_save_protected_keeps_explicit_suffix(self, trained_model, tmp_path):
        path = tmp_path / "explicit.npz"
        assert save_protected(path, trained_model) == str(path)

    def test_save_state_returns_written_path(self, tmp_path):
        written = save_state(tmp_path / "raw", {"w": np.ones(2)})
        assert written.endswith("raw.npz")
        assert load_state(written)["w"].tolist() == [1.0, 1.0]


def _tamper_version(path, version):
    """Rewrite a checkpoint's manifest format version in place."""
    import json

    state = load_state(path)
    manifest = json.loads(str(state["__repro_checkpoint__"]))
    manifest["version"] = version
    state["__repro_checkpoint__"] = np.array(json.dumps(manifest))
    return save_state(path, state)


class TestFormatVersion:
    @pytest.mark.parametrize("version", [99, 0, "banana", None])
    def test_unknown_version_rejected(self, trained_model, tmp_path, version):
        path = save_protected(tmp_path / "versioned.npz", trained_model)
        _tamper_version(path, version)
        with pytest.raises(
            ConfigurationError, match="unsupported checkpoint format version"
        ):
            load_protected(path, _builder)

    def test_newer_version_hints_upgrade(self, trained_model, tmp_path):
        path = save_protected(tmp_path / "future.npz", trained_model)
        _tamper_version(path, 2)
        with pytest.raises(ConfigurationError, match="newer build"):
            load_protected(path, _builder)


class TestAutoLoad:
    FULL_META = {
        "model": "lenet",
        "num_classes": NUM_CLASSES,
        "scale": 1.0,
        "image_size": IMAGE_SIZE,
        "seed": 0,
        "method": "clipact",
    }

    def test_auto_load_round_trip(self, protected, tmp_path, test_loader):
        model = protected("clipact")
        path = save_protected(tmp_path / "auto.npz", model, meta=self.FULL_META)
        reloaded, meta = load_protected_auto(path)
        assert meta["method"] == "clipact"
        x = _eval_batch(test_loader)
        np.testing.assert_array_equal(model(x).data, reloaded(x).data)

    def test_missing_architecture_meta_rejected(self, protected, tmp_path):
        model = protected("clipact")
        path = save_protected(tmp_path / "bare-meta.npz", model)
        with pytest.raises(ConfigurationError, match="missing model, num_classes"):
            load_protected_auto(path)

    def test_rgb_in_channels_meta_tolerates_legacy_builders(
        self, protected, tmp_path
    ):
        """RGB checkpoints must load through builders that (validly)
        don't accept ``in_channels`` — custom architectures registered
        before the field existed.  Only non-RGB geometry forwards it."""
        from unittest import mock

        from repro.models import registry as registry_module

        model = protected("clipact")
        meta = {**self.FULL_META, "in_channels": 3}
        path = save_protected(tmp_path / "legacy-rgb.npz", model, meta=meta)

        def legacy_builder(num_classes, scale, seed, image_size):
            # Pre-in_channels signature: a TypeError here means the
            # loader forwarded a kwarg the builder never declared.
            from repro.models.lenet import build_lenet

            return build_lenet(
                num_classes=num_classes,
                scale=scale,
                image_size=image_size,
                seed=seed,
            )

        with mock.patch.dict(
            registry_module._REGISTRY, {"lenet": legacy_builder}
        ):
            reloaded, _ = load_protected_auto(path)
        np.testing.assert_array_equal(
            dict(model.state_dict())["features.0.weight"],
            dict(reloaded.state_dict())["features.0.weight"],
        )

    def test_read_checkpoint_meta_peeks_manifest(self, protected, tmp_path):
        from repro.core import read_checkpoint_meta

        model = protected("clipact")
        path = save_protected(tmp_path / "peek.npz", model, meta=self.FULL_META)
        meta = read_checkpoint_meta(path)
        assert meta["model"] == "lenet"
        assert meta["image_size"] == IMAGE_SIZE

    def test_read_checkpoint_meta_rejects_bare_state(self, tmp_path):
        from repro.core import read_checkpoint_meta

        bare = save_state(tmp_path / "bare.npz", {"w": np.zeros(2)})
        with pytest.raises(ConfigurationError, match="not a protected-model"):
            read_checkpoint_meta(bare)


class TestErrors:
    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "bare.npz"
        save_state(path, {"weight": np.zeros(3)})
        with pytest.raises(ConfigurationError, match="not a protected-model"):
            load_protected(path, _builder)

    def test_wrong_builder_architecture(self, protected, tmp_path):
        from repro.errors import ReproError

        model = protected("clipact")
        path = tmp_path / "arch.npz"
        save_protected(path, model)

        def tiny_builder():
            return build_model(
                "lenet", num_classes=2, scale=0.5, image_size=8, seed=0
            )

        with pytest.raises(ReproError):
            load_protected(path, tiny_builder)

    def test_post_trained_bounds_survive(
        self, protected, tmp_path, train_loader, test_loader
    ):
        """Post-training mutates λ in place; the checkpoint must carry the
        tuned values, not the profiled initialisation."""
        from repro.core import BoundPostTrainer, PostTrainingConfig

        model = protected("fitact")
        BoundPostTrainer(
            model, PostTrainingConfig(epochs=1, lr=0.01, zeta=0.1, delta=0.5)
        ).run(train_loader, test_loader, reference_accuracy=1.0)
        before = {
            path: m.bound.data.copy() for path, m in bound_modules(model).items()
        }
        path = tmp_path / "tuned.npz"
        save_protected(path, model)
        reloaded, _ = load_protected(path, _builder)
        for site_path, bounds in before.items():
            np.testing.assert_array_equal(
                bound_modules(reloaded)[site_path].bound.data, bounds
            )
