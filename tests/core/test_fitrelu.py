"""FitReLU (paper Eq. 6, reconciled form): shape, limits, trainability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import DEFAULT_SLOPE, FitReLU, FitReLUNaive
from repro.errors import ConfigurationError


class TestShape:
    def test_zero_at_origin(self):
        act = FitReLU(np.array([2.0], dtype=np.float32))
        assert act(Tensor([0.0])).data[0] == 0.0

    def test_negative_inputs_zero(self):
        act = FitReLU(np.array([2.0], dtype=np.float32))
        out = act(Tensor([-5.0, -0.1]))
        assert out.data.tolist() == [0.0, 0.0]

    def test_identity_well_below_bound(self):
        act = FitReLU(np.array([4.0], dtype=np.float32), k=40.0)
        x = np.array([0.5, 1.0, 2.0], dtype=np.float32)
        out = act(Tensor(x)).data
        np.testing.assert_allclose(out, x, rtol=1e-2)

    def test_half_value_at_bound(self):
        """ξ(λ) = λ·σ(0) = λ/2 — the analytic midpoint of the descent."""
        act = FitReLU(np.array([3.0], dtype=np.float32))
        assert act(Tensor([3.0])).data[0] == pytest.approx(1.5, rel=1e-5)

    def test_squashes_far_above_bound(self):
        act = FitReLU(np.array([2.0], dtype=np.float32), k=40.0)
        out = act(Tensor([10.0, 100.0, 30000.0]))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-3)

    def test_extreme_faulty_input_no_overflow(self):
        act = FitReLU(np.array([1.0], dtype=np.float32))
        with np.errstate(over="raise"):
            out = act(Tensor([32767.0, -32768.0]))
        assert np.isfinite(out.data).all()

    def test_peak_bounded_by_lambda(self):
        """The smooth bump never exceeds the bound itself."""
        act = FitReLU(np.array([2.5], dtype=np.float32), k=40.0)
        grid = Tensor(np.linspace(0, 50, 2000, dtype=np.float32))
        assert float(act(grid).data.max()) <= 2.5


class TestLimits:
    def test_large_bound_approaches_relu(self):
        act = FitReLU(np.array([1e4], dtype=np.float32), k=40.0)
        x = np.array([0.5, 2.0, 10.0], dtype=np.float32)
        np.testing.assert_allclose(act(Tensor(x)).data, x, rtol=1e-4)

    @given(st.floats(min_value=0.5, max_value=8.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_large_k_approaches_naive(self, bound, seed):
        """k → ∞ recovers FitReLU-Naive away from the discontinuity."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(-2 * bound, 3 * bound, 64).astype(np.float32)
        # Exclude the transition band around λ where the smooth/hard
        # functions legitimately differ.
        x = x[np.abs(x - bound) > 0.25 * bound]
        smooth = FitReLU(np.array([bound], dtype=np.float32), k=5000.0,
                         slope_mode="absolute")
        hard = FitReLUNaive(np.array([bound], dtype=np.float32))
        np.testing.assert_allclose(
            smooth(Tensor(x)).data, hard(Tensor(x)).data, atol=1e-2
        )

    def test_relative_mode_adapts_to_small_bounds(self):
        """A neuron with λ=0.2 must still pass mid-range activations —
        the failure mode of absolute k that motivated relative slopes."""
        small_rel = FitReLU(np.array([0.2], dtype=np.float32), k=40.0,
                            slope_mode="relative")
        out = small_rel(Tensor([0.1])).data[0]
        assert out == pytest.approx(0.1, rel=0.05)

    def test_absolute_mode_uses_fixed_k(self):
        act = FitReLU(np.array([1.0, 10.0], dtype=np.float32), k=7.0,
                      slope_mode="absolute")
        np.testing.assert_allclose(act.effective_slope(), [7.0, 7.0])

    def test_relative_mode_slope_scales(self):
        act = FitReLU(np.array([1.0, 10.0], dtype=np.float32), k=40.0)
        np.testing.assert_allclose(act.effective_slope(), [40.0, 4.0])


class TestTrainability:
    def test_bound_receives_gradient(self):
        act = FitReLU(np.array([2.0], dtype=np.float32))
        x = Tensor([1.9])
        act(x).sum().backward()
        assert act.bound.grad is not None
        assert abs(float(act.bound.grad[0])) > 0

    def test_gradient_direction_raises_bound_for_clipped_input(self):
        """An input just above λ is being suppressed; increasing λ recovers
        it, so ∂out/∂λ must be positive there."""
        act = FitReLU(np.array([2.0], dtype=np.float32))
        act(Tensor([2.2])).sum().backward()
        assert float(act.bound.grad[0]) > 0

    def test_no_gradient_when_frozen(self):
        act = FitReLU(np.array([2.0], dtype=np.float32), trainable=False)
        x = Tensor([1.0], requires_grad=True)
        act(x).sum().backward()
        assert act.bound.grad is None
        assert x.grad is not None

    def test_input_gradient_near_identity_region(self):
        act = FitReLU(np.array([4.0], dtype=np.float32), k=40.0)
        x = Tensor([1.0], requires_grad=True)
        act(x).sum().backward()
        assert float(x.grad[0]) == pytest.approx(1.0, abs=0.05)

    def test_per_neuron_bound_gradients_independent(self):
        act = FitReLU(np.array([2.0, 2.0], dtype=np.float32))
        x = Tensor(np.array([[2.2, 0.1]], dtype=np.float32))
        act(x).sum().backward()
        grads = act.bound.grad
        assert abs(grads[0]) > abs(grads[1])


class TestValidation:
    def test_non_positive_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            FitReLU(np.array([0.0], dtype=np.float32))

    def test_non_positive_k_rejected(self):
        with pytest.raises(ConfigurationError):
            FitReLU(np.array([1.0], dtype=np.float32), k=0.0)

    def test_bad_slope_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FitReLU(np.array([1.0], dtype=np.float32), slope_mode="adaptive")

    def test_default_slope_exported(self):
        assert DEFAULT_SLOPE > 0

    def test_hard_equivalent_copies(self):
        act = FitReLU(np.array([2.0], dtype=np.float32))
        bounds = act.hard_equivalent()
        bounds[0] = 99.0
        assert act.bound.data[0] == pytest.approx(2.0)

    def test_bound_count(self):
        act = FitReLU(np.ones((3, 2, 2), dtype=np.float32))
        assert act.bound_count == 12
