"""Activation profiling and model surgery."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import (
    ActivationProfile,
    FitReLU,
    FitReLUNaive,
    GBReLU,
    RecordingReLU,
    bound_modules,
    bound_parameter_count,
    find_activation_sites,
    make_factory,
    profile_activations,
    replace_activations,
    restore_relu,
)
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigurationError


def _loader(n=32, channels=2, size=4, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, channels, size, size)).astype(np.float32)
    return DataLoader(ArrayDataset(data, np.zeros(n, dtype=np.int64)), batch_size=8)


def _conv_model(seed=0):
    return nn.Sequential(
        nn.Conv2d(2, 3, 3, padding=1, rng=seed),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(3 * 16, 5, rng=seed + 1),
        nn.ReLU(),
        nn.Linear(5, 2, rng=seed + 2),
    )


class TestRecordingReLU:
    def test_behaves_like_relu(self):
        recorder = RecordingReLU()
        x = Tensor([[-1.0, 2.0]])
        assert recorder(x).data.tolist() == [[0.0, 2.0]]

    def test_tracks_elementwise_max(self):
        recorder = RecordingReLU()
        recorder(Tensor(np.array([[1.0, 5.0]], dtype=np.float32)))
        recorder(Tensor(np.array([[3.0, 2.0]], dtype=np.float32)))
        assert recorder.max_activation.tolist() == [3.0, 5.0]
        assert recorder.batches_seen == 2

    def test_max_over_batch_axis(self):
        recorder = RecordingReLU()
        recorder(Tensor(np.array([[1.0], [4.0]], dtype=np.float32)))
        assert recorder.max_activation.tolist() == [4.0]


class TestProfiler:
    def test_profile_shapes(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        assert profile.sites == ["1", "4"]
        assert profile.site_max["1"].shape == (3, 4, 4)
        assert profile.site_max["4"].shape == (5,)

    def test_model_restored_after_profiling(self):
        model = _conv_model()
        profile_activations(model, _loader())
        assert isinstance(model[1], nn.ReLU)
        assert isinstance(model[4], nn.ReLU)

    def test_profile_matches_manual_forward(self):
        model = _conv_model()
        loader = _loader()
        profile = profile_activations(model, loader)
        model.eval()
        manual = None
        from repro.autograd import no_grad

        with no_grad():
            for inputs, _ in loader:
                out = model[0](inputs).data
                batch_max = np.maximum(out, 0).max(axis=0)
                manual = batch_max if manual is None else np.maximum(manual, batch_max)
        np.testing.assert_allclose(profile.site_max["1"], manual, rtol=1e-5)

    def test_bounds_granularities(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        neuron = profile.bounds("1", "neuron")
        channel = profile.bounds("1", "channel")
        layer = profile.bounds("1", "layer")
        assert neuron.shape == (3, 4, 4)
        assert channel.shape == (3, 1, 1)
        assert layer.shape == (1,)
        assert layer[0] == pytest.approx(neuron.max())
        np.testing.assert_allclose(channel.reshape(3), neuron.max(axis=(1, 2)))

    def test_bounds_floor_applied(self):
        profile = ActivationProfile(site_max={"s": np.zeros((2, 2), dtype=np.float32)})
        bounds = profile.bounds("s", "neuron", floor=0.5)
        assert (bounds == 0.5).all()

    def test_unknown_granularity(self):
        profile = ActivationProfile(site_max={"s": np.ones(2, dtype=np.float32)})
        with pytest.raises(ConfigurationError):
            profile.bounds("s", "per-row")

    def test_no_relu_model_raises(self):
        with pytest.raises(ConfigurationError):
            profile_activations(nn.Sequential(nn.Tanh()), _loader())

    def test_spread_and_distribution(self):
        profile = ActivationProfile(
            site_max={"s": np.array([1.0, 3.0], dtype=np.float32)}
        )
        assert profile.neuron_distribution("s").tolist() == [1.0, 3.0]
        spread = profile.spread("s")
        assert spread["max"] == 3.0 and spread["min"] == 1.0
        assert profile.total_neurons == 2


class TestSurgery:
    def test_find_sites(self):
        assert find_activation_sites(_conv_model()) == ["1", "4"]

    def test_fitact_replacement(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replaced = replace_activations(
            model, make_factory("fitact"), profile, granularity="neuron"
        )
        assert replaced == ["1", "4"]
        assert isinstance(model[1], FitReLU)
        assert model[1].bound.shape == (3, 4, 4)

    def test_clipact_replacement_layer_bound(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(model, make_factory("clipact"), profile, granularity="layer")
        assert isinstance(model[1], GBReLU)
        assert model[1].mode == "zero"
        assert model[1].bound.data[0] == pytest.approx(profile.layer_bound("1"), rel=1e-5)

    def test_ranger_replacement_saturates(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(model, make_factory("ranger"), profile, granularity="layer")
        assert model[1].mode == "saturate"

    def test_fitact_naive_replacement(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(model, make_factory("fitact-naive"), profile)
        assert isinstance(model[1], FitReLUNaive)

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigurationError):
            make_factory("tmr")

    def test_bound_scale(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(
            model, make_factory("clipact", bound_scale=0.5), profile, granularity="layer"
        )
        assert model[1].bound.data[0] == pytest.approx(
            0.5 * profile.layer_bound("1"), rel=1e-5
        )

    def test_invalid_bound_scale(self):
        with pytest.raises(ConfigurationError):
            make_factory("clipact", bound_scale=0.0)

    def test_clipact_surgery_preserves_clean_outputs(self):
        """Bounds at the observed maxima must not change in-range outputs."""
        model = _conv_model()
        loader = _loader()
        profile = profile_activations(model, loader)
        inputs, _ = next(iter(loader))
        model.eval()
        before = model(inputs).data.copy()
        replace_activations(model, make_factory("clipact"), profile, granularity="layer")
        after = model(inputs).data
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-5)

    def test_restore_relu(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(model, make_factory("fitact"), profile)
        assert restore_relu(model) == 2
        assert isinstance(model[1], nn.ReLU)

    def test_bound_bookkeeping(self):
        model = _conv_model()
        profile = profile_activations(model, _loader())
        replace_activations(model, make_factory("fitact"), profile)
        assert bound_parameter_count(model) == 3 * 16 + 5
        assert set(bound_modules(model)) == {"1", "4"}

    def test_forward_order_preserved_after_surgery(self):
        """Regression for the dict-reinsertion ordering bug."""
        model = _conv_model()
        loader = _loader()
        profile = profile_activations(model, loader)
        inputs, _ = next(iter(loader))
        model.eval()
        before = model(inputs).data.copy()
        replace_activations(
            model, lambda path, bounds: nn.ReLU(), profile, granularity="layer"
        )
        after = model(inputs).data
        np.testing.assert_allclose(after, before, rtol=1e-5)
