"""The protection API and the full FitAct pipeline."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FitActConfig,
    FitActPipeline,
    FitReLU,
    GBReLU,
    PostTrainingConfig,
    ProtectionConfig,
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
    protect_model,
)
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigurationError
from repro.quant.fixed_point import decode, encode


def _toy_problem(n=256, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 8)).astype(np.float32)
    y = (x[:, 0] - x[:, 2] > 0).astype(np.int64)
    return DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=0)


def _trained_mlp(loader, seed=0):
    model = nn.Sequential(
        nn.Linear(8, 16, rng=seed), nn.ReLU(), nn.Linear(16, 2, rng=seed + 1)
    )
    Trainer(model, TrainingConfig(epochs=10, lr=0.1)).fit(loader)
    return model


class TestProtectionConfig:
    def test_method_validation(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(method="dmr")

    def test_granularity_validation(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(granularity="per-core")

    def test_method_default_granularities(self):
        assert ProtectionConfig(method="fitact").effective_granularity == "neuron"
        assert ProtectionConfig(method="clipact").effective_granularity == "layer"
        assert ProtectionConfig(method="ranger").effective_granularity == "layer"

    def test_granularity_override(self):
        config = ProtectionConfig(method="fitact", granularity="channel")
        assert config.effective_granularity == "channel"


class TestProtectModel:
    def test_none_is_noop(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        report = protect_model(model, loader, ProtectionConfig(method="none"))
        assert report.replaced_sites == []
        assert isinstance(model[1], nn.ReLU)

    def test_fitact_replaces_and_reports(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        report = protect_model(model, loader, ProtectionConfig(method="fitact"))
        assert report.replaced_sites == ["1"]
        assert report.bound_words == 16
        assert isinstance(model[1], FitReLU)
        assert "fitact" in report.summary()

    def test_clipact_uses_layer_bound(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        protect_model(model, loader, ProtectionConfig(method="clipact"))
        assert isinstance(model[1], GBReLU)
        assert model[1].bound.size == 1

    def test_shared_profile_reused(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        first = protect_model(model, loader, ProtectionConfig(method="clipact"))
        model2 = _trained_mlp(loader)
        second = protect_model(
            model2, loader, ProtectionConfig(method="ranger"), profile=first.profile
        )
        assert second.profile is first.profile


class TestFitActPipeline:
    def test_end_to_end_protect(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        reference = evaluate_accuracy(model, loader)
        pipeline = FitActPipeline(
            FitActConfig(post_training=PostTrainingConfig(epochs=2, lr=0.05, delta=0.1))
        )
        result = pipeline.protect(model, loader, loader)
        assert isinstance(model[1], FitReLU)
        assert result.post_training is not None
        assert result.reference_accuracy == pytest.approx(reference, abs=1e-9)
        assert reference - result.protected_accuracy < 0.1 + 1e-6
        assert "clean accuracy" in result.summary()

    def test_quantizes_parameters(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        pipeline = FitActPipeline(
            FitActConfig(post_training=PostTrainingConfig(epochs=1, delta=0.2))
        )
        pipeline.protect(model, loader, loader)
        for _, param in model.named_parameters():
            np.testing.assert_array_equal(decode(encode(param.data)), param.data)

    def test_quantize_disabled(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        pipeline = FitActPipeline(
            FitActConfig(
                quantize=False,
                post_training=PostTrainingConfig(epochs=1, delta=0.2),
            )
        )
        pipeline.protect(model, loader, loader)
        quantized = all(
            np.array_equal(decode(encode(p.data)), p.data)
            for _, p in model.named_parameters()
        )
        assert not quantized

    def test_clipact_pipeline_skips_post_training(self):
        loader = _toy_problem()
        model = _trained_mlp(loader)
        pipeline = FitActPipeline(
            FitActConfig(protection=ProtectionConfig(method="clipact"))
        )
        result = pipeline.protect(model, loader, loader)
        assert result.post_training is None

    def test_train_helper(self):
        loader = _toy_problem()
        model = nn.Sequential(nn.Linear(8, 4, rng=0), nn.ReLU(), nn.Linear(4, 2, rng=1))
        report = FitActPipeline().train(
            model, loader, training=TrainingConfig(epochs=1)
        )
        assert report.epochs == 1
