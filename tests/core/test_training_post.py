"""Stage-1 training and stage-2 bound post-training."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    BoundPostTrainer,
    PostTrainingConfig,
    ProtectionConfig,
    Trainer,
    TrainingConfig,
    evaluate_accuracy,
    protect_model,
)
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigurationError


def _toy_problem(n=256, seed=0):
    """Linearly separable two-class toy data."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 8)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=0)


def _mlp(seed=0):
    return nn.Sequential(
        nn.Linear(8, 16, rng=seed), nn.ReLU(), nn.Linear(16, 2, rng=seed + 1)
    )


class TestTrainer:
    def test_loss_decreases(self):
        loader = _toy_problem()
        model = _mlp()
        report = Trainer(model, TrainingConfig(epochs=5, lr=0.1)).fit(loader)
        losses = [h["loss"] for h in report.history]
        assert losses[-1] < losses[0]

    def test_reaches_high_accuracy(self):
        loader = _toy_problem()
        model = _mlp()
        report = Trainer(model, TrainingConfig(epochs=12, lr=0.1)).fit(loader, loader)
        assert report.final_accuracy > 0.9

    def test_report_summary(self):
        loader = _toy_problem(n=64)
        report = Trainer(_mlp(), TrainingConfig(epochs=1)).fit(loader)
        assert "trained 1 epochs" in report.summary()

    def test_evaluate_accuracy_stub(self):
        """Known-logits model gives exact accuracy."""

        class Fixed(nn.Module):
            def forward(self, x):
                from repro.autograd import Tensor

                n = x.shape[0]
                logits = np.zeros((n, 2), dtype=np.float32)
                logits[:, 1] = 1.0  # always predict class 1
                return Tensor(logits)

        x = np.zeros((10, 3), dtype=np.float32)
        y = np.array([1] * 7 + [0] * 3, dtype=np.int64)
        loader = DataLoader(ArrayDataset(x, y), batch_size=4)
        assert evaluate_accuracy(Fixed(), loader) == pytest.approx(0.7)

    def test_evaluate_restores_training_flag(self):
        model = _mlp()
        model.train()
        evaluate_accuracy(model, _toy_problem(n=32))
        assert model.training


class TestPostTraining:
    def _protected_model(self, loader, zeta=1.0, epochs=3, delta=0.1):
        model = _mlp()
        Trainer(model, TrainingConfig(epochs=10, lr=0.1)).fit(loader)
        protect_model(model, loader, ProtectionConfig(method="fitact"))
        trainer = BoundPostTrainer(
            model,
            PostTrainingConfig(epochs=epochs, lr=0.05, zeta=zeta, delta=delta),
        )
        return model, trainer

    def test_requires_trainable_bounds(self):
        with pytest.raises(ConfigurationError, match="trainable activation bounds"):
            BoundPostTrainer(_mlp())

    def test_bounds_shrink(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader)
        report = trainer.run(loader, loader)
        assert report.final_mean_bound < report.initial_mean_bound
        assert report.bound_shrink > 0

    def test_weights_frozen_during_post_training(self):
        """Paper §V-B: none of ΘA may change."""
        loader = _toy_problem()
        model, trainer = self._protected_model(loader)
        weights_before = {
            name: param.data.copy()
            for name, param in model.named_parameters()
            if "bound" not in name
        }
        trainer.run(loader, loader)
        for name, param in model.named_parameters():
            if "bound" not in name:
                np.testing.assert_array_equal(param.data, weights_before[name])

    def test_requires_grad_restored_after_run(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader)
        trainer.run(loader, loader)
        assert all(p.requires_grad for p in model.parameters())

    def test_accuracy_constraint_holds(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader, delta=0.05)
        report = trainer.run(loader, loader)
        assert (
            report.reference_accuracy - report.final_accuracy
            < trainer.config.delta + 1e-9
        )

    def test_aggressive_zeta_rolls_back(self):
        """A huge ζ crushes bounds; the δ constraint must roll back."""
        loader = _toy_problem()
        model, trainer = self._protected_model(loader, zeta=1e5, epochs=4, delta=0.02)
        report = trainer.run(loader, loader)
        drop = report.reference_accuracy - report.final_accuracy
        assert drop < 0.02 + 1e-9

    def test_bounds_respect_floor(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader, zeta=1e5)
        trainer.run(loader, loader)
        for bound in trainer.bound_parameters:
            assert bound.data.min() >= trainer.config.bound_floor - 1e-9

    def test_zero_zeta_changes_little(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader, zeta=0.0, epochs=2)
        report = trainer.run(loader, loader)
        # Without the regulariser the only pressure on λ is the CE term.
        assert report.bound_shrink < 0.2

    def test_report_fields(self):
        loader = _toy_problem()
        _, trainer = self._protected_model(loader, epochs=2)
        report = trainer.run(loader, loader)
        assert report.epochs_run == 2
        assert len(report.history) == 2
        assert report.duration_seconds > 0
        assert "mean bound" in report.summary()

    def test_total_bounds_matches_modules(self):
        loader = _toy_problem()
        model, trainer = self._protected_model(loader)
        assert trainer.total_bounds == 16  # one hidden ReLU site of width 16


class TestInfeasibleConstraintFallback:
    """When surgery costs more clean accuracy than δ allows and no epoch
    recovers it, post-training must ship the *most accurate* state seen
    — never roll back to the crippled initial state (regression test for
    the MobileNet EXT-M finding)."""

    def _crippled_model(self, loader, epochs=6):
        model = _mlp()
        Trainer(model, TrainingConfig(epochs=12, lr=0.1)).fit(loader)
        protect_model(model, loader, ProtectionConfig(method="fitact"))
        # Shrink the bounds below the legitimate activation range —
        # mildly, so the sigmoid gate keeps a live λ gradient and the CE
        # term can regrow the bounds (a hard 0 gate has zero gradient).
        from repro.core.surgery import bound_modules

        for module in bound_modules(model).values():
            module.bound.data = (module.bound.data * 0.3).astype(np.float32)
        trainer = BoundPostTrainer(
            model,
            PostTrainingConfig(epochs=epochs, lr=0.05, zeta=0.0, delta=0.01),
        )
        return model, trainer

    def test_ships_best_seen_state(self):
        loader = _toy_problem()
        model, trainer = self._crippled_model(loader)
        report = trainer.run(loader, loader, reference_accuracy=1.0)
        # The fallback contract: the shipped state is at least as good
        # as the crippled initial AND as every epoch's state.
        assert report.final_accuracy >= report.initial_accuracy - 1e-9
        best_epoch = max(h["clean_accuracy"] for h in report.history)
        assert report.final_accuracy >= best_epoch - 1e-9
        live = evaluate_accuracy(model, loader)
        assert live == pytest.approx(report.final_accuracy, abs=1e-6)

    def test_feasible_path_unchanged(self):
        """With an achievable reference the constrained-best rollback
        behaves exactly as before (bounds shrink, accuracy within δ)."""
        loader = _toy_problem()
        model = _mlp()
        Trainer(model, TrainingConfig(epochs=12, lr=0.1)).fit(loader)
        reference = evaluate_accuracy(model, loader)
        protect_model(model, loader, ProtectionConfig(method="fitact"))
        trainer = BoundPostTrainer(
            model, PostTrainingConfig(epochs=3, lr=0.05, zeta=0.5, delta=0.05)
        )
        report = trainer.run(loader, loader, reference_accuracy=reference)
        assert reference - report.final_accuracy < 0.05 + 1e-9


class TestCompiledCleanAccuracyProbe:
    """The per-epoch δ-probe runs through a compiled plan when the eval
    layer has installed its factory — and must change nothing but time."""

    def _report(self, monkeypatch, compiled):
        import repro.eval  # noqa: F401 — importing installs the factory
        from repro.core import post_training as module

        if not compiled:
            monkeypatch.setattr(module, "_CLEAN_ACCURACY_FACTORY", None)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((256, 8)).astype(np.float32)
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        train = DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=0)
        evalset = DataLoader(ArrayDataset(x, y), batch_size=32)
        model = _mlp()
        Trainer(model, TrainingConfig(epochs=10, lr=0.1)).fit(train)
        protect_model(model, train, ProtectionConfig(method="fitact"))
        trainer = BoundPostTrainer(
            model, PostTrainingConfig(epochs=3, lr=0.05, zeta=1.0, delta=0.1)
        )
        return trainer.run(train, evalset)

    def test_factory_is_installed_by_importing_eval(self):
        import repro.eval  # noqa: F401
        from repro.core import post_training as module

        assert module._CLEAN_ACCURACY_FACTORY is not None

    def test_compiled_probe_is_bit_identical_to_module_forward(self, monkeypatch):
        compiled = self._report(monkeypatch, compiled=True)
        fallback = self._report(monkeypatch, compiled=False)
        assert compiled.initial_accuracy == fallback.initial_accuracy
        assert compiled.final_accuracy == fallback.final_accuracy
        assert compiled.rolled_back == fallback.rolled_back
        assert [h["clean_accuracy"] for h in compiled.history] == [
            h["clean_accuracy"] for h in fallback.history
        ]
        assert compiled.final_mean_bound == fallback.final_mean_bound
