"""DataLoader batching and the batched transforms."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
    random_split,
    stratified_split,
)
from repro.errors import ConfigurationError, ShapeError


def _dataset(n=20, channels=3, size=8, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.random((n, channels, size, size), dtype=np.float32),
        rng.integers(0, classes, n),
    )


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(_dataset(20), batch_size=8)
        batches = list(loader)
        assert [len(t) for _, t in batches] == [8, 8, 4]
        assert isinstance(batches[0][0], Tensor)

    def test_len(self):
        assert len(DataLoader(_dataset(20), batch_size=8)) == 3
        assert len(DataLoader(_dataset(20), batch_size=8, drop_last=True)) == 2

    def test_drop_last(self):
        loader = DataLoader(_dataset(20), batch_size=8, drop_last=True)
        assert [len(t) for _, t in loader] == [8, 8]

    def test_shuffle_deterministic_by_seed(self):
        ds = _dataset(16)
        a = [t.tolist() for _, t in DataLoader(ds, batch_size=4, shuffle=True, rng=3)]
        b = [t.tolist() for _, t in DataLoader(ds, batch_size=4, shuffle=True, rng=3)]
        assert a == b

    def test_shuffle_changes_order(self):
        ds = _dataset(32)
        plain = [t.tolist() for _, t in DataLoader(ds, batch_size=32)]
        shuffled = [t.tolist() for _, t in DataLoader(ds, batch_size=32, shuffle=True, rng=1)]
        assert plain != shuffled

    def test_transform_applied(self):
        loader = DataLoader(_dataset(8), batch_size=8, transform=lambda b: b * 0)
        inputs, _ = next(iter(loader))
        assert float(np.abs(inputs.data).sum()) == 0.0

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            DataLoader(_dataset(), batch_size=0)

    def test_generic_dataset_fallback(self):
        ds = _dataset(10)
        subset = Subset(ds, np.arange(5))
        loader = DataLoader(subset, batch_size=2)
        inputs, targets = next(iter(loader))
        assert inputs.shape == (2, 3, 8, 8)
        assert targets.dtype == np.int64


class TestTransforms:
    def test_normalize_math(self):
        batch = np.ones((2, 3, 4, 4), dtype=np.float32) * 0.5
        out = Normalize((0.5, 0.5, 0.5), (0.25, 0.25, 0.25))(batch)
        np.testing.assert_allclose(out, 0.0, atol=1e-6)

    def test_normalize_shape_check(self):
        with pytest.raises(ShapeError):
            Normalize((0.5,) * 3, (0.2,) * 3)(np.zeros((2, 1, 4, 4), dtype=np.float32))

    def test_normalize_zero_std_rejected(self):
        with pytest.raises(ConfigurationError):
            Normalize((0.5,), (0.0,))

    def test_flip_always(self):
        batch = np.zeros((1, 1, 2, 3), dtype=np.float32)
        batch[0, 0, 0] = [1, 2, 3]
        out = RandomHorizontalFlip(p=1.0, rng=0)(batch)
        assert out[0, 0, 0].tolist() == [3, 2, 1]

    def test_flip_never(self):
        batch = np.random.default_rng(0).random((4, 1, 3, 3)).astype(np.float32)
        out = RandomHorizontalFlip(p=0.0, rng=0)(batch)
        np.testing.assert_array_equal(out, batch)

    def test_crop_preserves_shape(self):
        batch = np.random.default_rng(0).random((4, 3, 8, 8)).astype(np.float32)
        out = RandomCrop(padding=2, rng=0)(batch)
        assert out.shape == batch.shape

    def test_crop_invalid_padding(self):
        with pytest.raises(ConfigurationError):
            RandomCrop(padding=0)

    def test_compose_order(self):
        double = lambda b: b * 2  # noqa: E731
        add_one = lambda b: b + 1  # noqa: E731
        out = Compose([double, add_one])(np.ones((1,), dtype=np.float32))
        assert out.tolist() == [3.0]


class TestSplits:
    def test_random_split_sizes(self):
        parts = random_split(_dataset(20), (0.5, 0.25, 0.25), rng=0)
        assert [len(p) for p in parts] == [10, 5, 5]

    def test_random_split_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            random_split(_dataset(10), (0.5, 0.1), rng=0)

    def test_stratified_split_preserves_classes(self):
        targets = np.array([0] * 10 + [1] * 10)
        first, second = stratified_split(targets, 0.5, rng=0)
        assert (targets[first] == 0).sum() == 5
        assert (targets[first] == 1).sum() == 5
        assert len(first) + len(second) == 20

    def test_stratified_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            stratified_split(np.zeros(4), 1.5)
