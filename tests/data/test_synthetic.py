"""SynthCIFAR generation: determinism, structure, learnability proxy."""

import numpy as np
import pytest

from repro.data.synthetic import (
    ClassRecipe,
    SyntheticImageDataset,
    synth_cifar10,
    synth_cifar100,
)
from repro.errors import ConfigurationError


class TestGeneration:
    def test_shapes_and_range(self):
        ds = SyntheticImageDataset(num_classes=4, num_samples=40, image_size=16, seed=0)
        assert ds.data.shape == (40, 3, 16, 16)
        assert ds.data.dtype == np.float32
        assert ds.data.min() >= 0.0 and ds.data.max() <= 1.0

    def test_deterministic_by_seed(self):
        a = SyntheticImageDataset(num_classes=3, num_samples=30, image_size=8, seed=5)
        b = SyntheticImageDataset(num_classes=3, num_samples=30, image_size=8, seed=5)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(num_classes=3, num_samples=30, image_size=8, seed=1)
        b = SyntheticImageDataset(num_classes=3, num_samples=30, image_size=8, seed=2)
        assert not np.array_equal(a.data, b.data)

    def test_train_test_splits_differ(self):
        train = SyntheticImageDataset(num_classes=3, num_samples=30, image_size=8, seed=1)
        test = SyntheticImageDataset(
            num_classes=3, num_samples=30, image_size=8, seed=1, split="test"
        )
        assert not np.array_equal(train.data, test.data)

    def test_class_balance(self):
        ds = SyntheticImageDataset(num_classes=5, num_samples=52, image_size=8, seed=0)
        counts = np.bincount(ds.targets, minlength=5)
        assert counts.min() >= 10
        assert counts.sum() == 52

    def test_getitem(self):
        ds = SyntheticImageDataset(num_classes=3, num_samples=9, image_size=8, seed=0)
        image, label = ds[0]
        assert image.shape == (3, 8, 8)
        assert isinstance(label, int)

    def test_invalid_split_raises(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageDataset(num_classes=3, num_samples=9, split="val")

    def test_too_few_samples_raises(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageDataset(num_classes=10, num_samples=5)

    def test_too_few_classes_raises(self):
        with pytest.raises(ConfigurationError):
            SyntheticImageDataset(num_classes=1, num_samples=10)


class TestClassStructure:
    def test_recipes_deterministic(self):
        a = ClassRecipe.for_class(3, 10, seed=0)
        b = ClassRecipe.for_class(3, 10, seed=0)
        np.testing.assert_array_equal(a.base_color, b.base_color)
        np.testing.assert_array_equal(a.shape_color, b.shape_color)
        assert a.shape_family == b.shape_family
        assert a.frequency == b.frequency

    def test_recipes_differ_between_classes(self):
        a = ClassRecipe.for_class(0, 10, seed=0)
        b = ClassRecipe.for_class(1, 10, seed=0)
        assert not np.array_equal(a.base_color, b.base_color)

    def test_classes_linearly_separable_by_centroid(self):
        """A nearest-centroid classifier must beat chance by a wide margin —
        the learnability property the substitution relies on."""
        train = SyntheticImageDataset(num_classes=6, num_samples=240, image_size=16, seed=3)
        test = SyntheticImageDataset(
            num_classes=6, num_samples=120, image_size=16, seed=3, split="test"
        )
        centroids = np.stack(
            [train.data[train.targets == c].mean(axis=0).reshape(-1) for c in range(6)]
        )
        flat = test.data.reshape(len(test.data), -1)
        distances = ((flat[:, None] - centroids[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == test.targets).mean()
        assert accuracy > 0.6, f"centroid accuracy only {accuracy:.1%}"

    def test_100_class_variant(self):
        ds = synth_cifar100(split="test", num_samples=200, seed=0)
        assert ds.num_classes == 100

    def test_10_class_variant_defaults(self):
        ds = synth_cifar10(split="test", num_samples=100)
        assert ds.num_classes == 10
        assert len(ds) == 100
