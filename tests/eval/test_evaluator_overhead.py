"""Evaluator, overhead measurement, presets, cache, and utils."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import evaluate_accuracy
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigurationError
from repro.eval import Evaluator, measure_inference_seconds, measure_overhead
from repro.eval.experiments import FULL, QUICK, SMOKE, StateCache, get_preset
from repro.utils import Timer, derive_seed, load_state, save_state, time_callable


def _loader(n=40):
    rng = np.random.default_rng(0)
    return DataLoader(
        ArrayDataset(
            rng.standard_normal((n, 4)).astype(np.float32), rng.integers(0, 2, n)
        ),
        batch_size=16,
    )


def _model():
    return nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))


class TestEvaluator:
    def test_matches_evaluate_accuracy(self):
        loader = _loader()
        model = _model()
        evaluator = Evaluator(loader)
        assert evaluator.accuracy(model) == pytest.approx(
            evaluate_accuracy(model, loader)
        )

    def test_max_batches_caps(self):
        evaluator = Evaluator(_loader(40), max_batches=1)
        assert len(evaluator) == 16

    def test_bind_closure(self):
        evaluator = Evaluator(_loader())
        model = _model()
        closure = evaluator.bind(model)
        assert closure() == pytest.approx(evaluator.accuracy(model))

    def test_empty_loader_raises(self):
        with pytest.raises(ConfigurationError):
            Evaluator(_loader(40), max_batches=0)


class TestOverheadMeasurement:
    def test_inference_seconds_positive(self):
        x = Tensor(np.zeros((8, 4), dtype=np.float32))
        assert measure_inference_seconds(_model(), x, repeats=2, warmup=1) > 0

    def test_measure_overhead_report(self):
        from repro.core import FitReLU

        baseline = _model()
        protected = _model()
        protected[1] = FitReLU(np.ones(8, dtype=np.float32))
        report = measure_overhead(
            baseline, protected, np.zeros((8, 4), dtype=np.float32), label="toy",
            repeats=2,
        )
        assert report.memory_overhead == pytest.approx(8 / baseline.num_parameters())
        assert report.label == "toy"


class TestPresets:
    def test_lookup(self):
        assert get_preset("quick") is QUICK
        assert get_preset("SMOKE") is SMOKE

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_preset("huge")

    def test_rates_scaled(self):
        preset = SMOKE
        assert preset.rates[0] == pytest.approx(1e-7 * preset.rate_scale)
        assert len(preset.rates) == 5

    def test_with_overrides(self):
        changed = QUICK.with_overrides(trials=9)
        assert changed.trials == 9
        assert QUICK.trials != 9 or True  # original untouched
        assert changed.name == QUICK.name

    def test_scale_override_per_model(self):
        assert QUICK.scale_for("resnet50") != QUICK.model_scale
        assert QUICK.scale_for("vgg16") == QUICK.model_scale
        assert FULL.scale_for("resnet50") == FULL.model_scale


class TestStateCache:
    def test_roundtrip(self, tmp_path):
        cache = StateCache(tmp_path)
        key = {"model": "x", "seed": 1}
        state = {"w": np.arange(4.0)}
        cache.store(key, state, {"accuracy": 0.5})
        loaded = cache.load(key)
        assert loaded is not None
        loaded_state, meta = loaded
        np.testing.assert_array_equal(loaded_state["w"], state["w"])
        assert meta["accuracy"] == 0.5

    def test_miss_returns_none(self, tmp_path):
        assert StateCache(tmp_path).load({"missing": True}) is None

    def test_different_keys_isolated(self, tmp_path):
        cache = StateCache(tmp_path)
        cache.store({"k": 1}, {"w": np.zeros(1)}, {})
        assert cache.load({"k": 2}) is None


class TestUtils:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            pass
        with timer:
            pass
        assert len(timer.laps) == 2
        assert timer.elapsed >= 0
        assert timer.mean == pytest.approx(timer.elapsed / 2)

    def test_time_callable(self):
        stats = time_callable(lambda: None, repeats=3, warmup=0)
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_time_callable_validates(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_save_load_state(self, tmp_path):
        path = tmp_path / "state"
        save_state(path, {"a.b": np.ones(3)})
        loaded = load_state(path)
        np.testing.assert_array_equal(loaded["a.b"], np.ones(3))

    def test_save_state_rejects_bad_keys(self, tmp_path):
        with pytest.raises(TypeError):
            save_state(tmp_path / "x", {1: np.ones(1)})
