"""Machine-readable export of experiment results."""

import csv
import json
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.experiments.ablations import AblationResult
from repro.eval.export import result_to_dict, save_csv, save_json
from repro.fault import BitFlipFaultModel, CampaignResult


def _ablation():
    result = AblationResult(
        title="TEST table",
        headers=["knob", "clean acc", "acc under fault"],
    )
    result.rows.append(["a", "90.00%", "70.00%"])
    result.rows.append(["b", "85.00%", "80.00%"])
    result.data["a"] = {"clean": 0.9, "faulty": 0.7}
    result.data["b"] = {"clean": 0.85, "faulty": 0.8}
    return result


class TestResultToDict:
    def test_ablation_roundtrips_through_json(self):
        payload = result_to_dict(_ablation())
        text = json.dumps(payload)  # must be serialisable
        restored = json.loads(text)
        assert restored["result_type"] == "AblationResult"
        assert restored["data"]["a"]["clean"] == 0.9
        assert restored["headers"] == ["knob", "clean acc", "acc under fault"]

    def test_numpy_values_unwrapped(self):
        result = CampaignResult(
            BitFlipFaultModel.exact(2),
            np.array([0.5, 0.75]),
            np.array([2, 2], dtype=np.int64),
        )
        payload = result_to_dict(result)
        json.dumps(payload)
        assert payload["accuracies"] == [0.5, 0.75]
        assert payload["flip_counts"] == [2, 2]
        # The fault model is a dataclass: exported field by field.
        assert payload["fault_model"]["n_flips"] == 2

    def test_nested_dataclasses(self):
        @dataclass
        class Inner:
            value: float = 1.5

        @dataclass
        class Outer:
            inner: Inner = field(default_factory=Inner)
            name: str = "x"

        payload = result_to_dict(Outer())
        assert payload["inner"]["value"] == 1.5
        assert payload["result_type"] == "Outer"

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigurationError):
            result_to_dict(42)


class TestSaveJson:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(path, _ablation())
        with open(path, encoding="utf-8") as handle:
            restored = json.load(handle)
        assert restored["title"] == "TEST table"

    def test_real_experiment_result(self, tmp_path):
        from repro.eval.experiments import run_fig3

        path = tmp_path / "fig3.json"
        save_json(path, run_fig3(points=21))
        with open(path, encoding="utf-8") as handle:
            restored = json.load(handle)
        assert restored["result_type"] == "Fig3Result"
        json_grid = restored["grid"]
        assert len(json_grid) == 21


class TestSaveCsv:
    def test_table_roundtrip(self, tmp_path):
        path = tmp_path / "table.csv"
        save_csv(path, _ablation())
        with open(path, encoding="utf-8", newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["knob", "clean acc", "acc under fault"]
        assert rows[1] == ["a", "90.00%", "70.00%"]
        assert len(rows) == 3

    def test_curve_results_rejected(self, tmp_path):
        from repro.eval.experiments import run_fig3

        with pytest.raises(ConfigurationError, match="save_json"):
            save_csv(tmp_path / "x.csv", run_fig3(points=11))
