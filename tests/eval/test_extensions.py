"""Extension experiments (EXT-A/E/F, ABL-W) at smoke scale."""

import pytest

from repro.eval.experiments import (
    SMOKE,
    prepare_context,
    run_activation_fault_comparison,
    run_ecc_comparison,
    run_fault_model_comparison,
    run_format_ablation,
)

PRESET = SMOKE.with_overrides(
    image_size=16, train_samples=300, test_samples=120, train_epochs=10,
    post_epochs=2, trials=2,
)


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    import os

    directory = tmp_path_factory.mktemp("ext-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="module")
def context(isolated_cache):
    return prepare_context("lenet", "synth10", PRESET)


class TestActivationFaultComparison:
    def test_result_structure(self, context):
        result = run_activation_fault_comparison(
            preset=PRESET,
            model_name="lenet",
            methods=("none", "clipact"),
            flips_per_layer=(1, 8),
            trials=2,
            context=context,
        )
        assert set(result.data) == {"none", "clipact"}
        for row in result.data.values():
            assert set(row) == {"clean", "n=1", "n=8"}
            assert all(0.0 <= v <= 1.0 for v in row.values())
        assert "EXT-A" in result.to_text()

    def test_rows_match_methods(self, context):
        result = run_activation_fault_comparison(
            preset=PRESET,
            model_name="lenet",
            methods=("none",),
            flips_per_layer=(4,),
            trials=2,
            context=context,
        )
        assert len(result.rows) == 1
        assert result.rows[0][0] == "none"


class TestECCComparison:
    def test_memory_and_structure(self, context):
        result = run_ecc_comparison(
            preset=PRESET,
            model_name="lenet",
            methods=("none", "fitact"),
            rate_indices=(2,),
            trials=2,
            context=context,
        )
        assert set(result.data) == {"none", "none+ecc", "fitact", "fitact+ecc"}
        # SEC-DED parity storage: 39/32 of the plain footprint.
        plain = result.data["none"]["memory_mb"]
        ecc = result.data["none+ecc"]["memory_mb"]
        # (byte counts round to integers, hence the loose tolerance)
        assert ecc == pytest.approx(plain * 39 / 32, rel=1e-3)
        # FitAct carries λ words on top.
        assert result.data["fitact"]["memory_mb"] > plain
        assert "corrected_words" in result.data["none+ecc"]

    def test_zero_policy_accepted(self, context):
        result = run_ecc_comparison(
            preset=PRESET,
            model_name="lenet",
            methods=("none",),
            rate_indices=(0,),
            double_policy="zero",
            trials=1,
            context=context,
        )
        assert "'zero'" in result.title


class TestFaultModelComparison:
    def test_budget_and_flip_accounting(self, context):
        result = run_fault_model_comparison(
            preset=PRESET,
            model_name="lenet",
            methods=("none", "fitact"),
            rate_index=4,
            trials=2,
            context=context,
        )
        labels = {
            "iid flips", "burst L=4", "burst L=8", "stuck-at-0", "stuck-at-1",
            "word random", "word zero",
        }
        assert set(result.data) == labels
        iid_flips = result.data["iid flips"]["mean_flips"]
        assert iid_flips >= 1
        # Stuck-at effective flips are data-masked: never above the budget.
        assert result.data["stuck-at-0"]["mean_flips"] <= iid_flips
        assert result.data["stuck-at-1"]["mean_flips"] <= iid_flips
        # Burst totals stay within burst_count x length of the budget.
        assert result.data["burst L=4"]["mean_flips"] <= iid_flips + 4
        # Word replacement flips at most 32 bits per corrupted word.
        assert result.data["word random"]["mean_flips"] <= (iid_flips // 16 + 1) * 32
        for row in result.data.values():
            assert 0.0 <= row["none"] <= 1.0
            assert 0.0 <= row["fitact"] <= 1.0


class TestMobilenetPanel:
    # Faulty Q15.16 extremes legitimately overflow float32 during the
    # campaign forward passes; inf/NaN logits are part of the physics.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_structure_at_smoke_scale(self, isolated_cache):
        from repro.eval.experiments import run_mobilenet_panel

        preset = PRESET.with_overrides(
            image_size=32, model_scale=0.125, train_epochs=4, post_epochs=1,
            trials=1, train_samples=200, test_samples=80,
        )
        result = run_mobilenet_panel(
            preset=preset,
            schemes=(("none", "none", None), ("clipact", "clipact", None)),
            trials=1,
        )
        rates = [k for k in result.data if k != "clean"]
        assert len(rates) == len(preset.rates)
        assert set(result.data["clean"]) == {"none", "clipact"}
        for rate in rates:
            assert 0.0 <= result.data[rate]["none"] <= 1.0
        assert "EXT-M" in result.to_text()


class TestLayerVulnerability:
    def test_groups_cover_depth(self, context):
        from repro.eval.experiments import run_layer_vulnerability

        result = run_layer_vulnerability(
            preset=PRESET,
            model_name="lenet",
            methods=("none",),
            flips_per_trial=4,
            max_groups=3,
            trials=2,
            context=context,
        )
        assert 1 <= len(result.data) <= 3
        for row in result.data.values():
            assert 0.0 <= row["none"] <= 1.0
        assert "EXT-L" in result.to_text()


class TestHardDeployAblation:
    def test_variants_and_reference(self, context):
        from repro.eval.experiments import run_hard_deploy_ablation

        result = run_hard_deploy_ablation(
            preset=PRESET,
            model_name="lenet",
            rate_indices=(2,),
            trials=2,
            context=context,
        )
        assert set(result.data) == {
            "smooth (FitReLU)",
            "hard (FitReLU-Naive)",
            "plain",
        }
        smooth = result.data["smooth (FitReLU)"]
        hard = result.data["hard (FitReLU-Naive)"]
        # Both deployment forms carry the same tuned bounds; clean
        # accuracy must agree closely (the gate band is ~10% of λ).
        assert abs(smooth["clean"] - hard["clean"]) < 0.15
        assert smooth["seconds"] > 0 and hard["seconds"] > 0
        assert "runtime_overhead" in smooth


class TestFormatAblation:
    def test_width_scaling_and_quantisation_loss(self, context):
        result = run_format_ablation(
            preset=PRESET,
            model_name="lenet",
            formats=("q7.8", "q15.16"),
            methods=("none",),
            rate_index=3,
            trials=2,
            context=context,
        )
        assert set(result.data) == {"q7.8:none", "q15.16:none"}
        narrow = result.data["q7.8:none"]
        wide = result.data["q15.16:none"]
        # Expected flips scale with word width at a fixed per-bit rate.
        assert wide["expected_flips"] == pytest.approx(
            narrow["expected_flips"] * 2, rel=1e-6
        )
        # 16-bit quantisation of a small trained LeNet stays usable.
        assert narrow["clean"] > 0.4

    def test_custom_format_spec(self, context):
        result = run_format_ablation(
            preset=PRESET,
            model_name="lenet",
            formats=("q5.10",),
            methods=("none",),
            rate_index=0,
            trials=1,
            context=context,
        )
        assert "Q5.10" in result.to_text()
