"""Metrics, reporting helpers, and the overhead report."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval import (
    OverheadReport,
    class_accuracy,
    confusion_matrix,
    format_curves,
    format_table,
    percent,
    text_histogram,
    top1_accuracy,
    topk_accuracy,
)


class TestMetrics:
    def test_top1(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert top1_accuracy(logits, targets) == pytest.approx(2 / 3)

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]] * 2)
        targets = np.array([1, 3])
        assert topk_accuracy(logits, targets, k=2) == pytest.approx(0.5)
        assert topk_accuracy(logits, targets, k=4) == 1.0

    def test_topk_bounds(self):
        with pytest.raises(ShapeError):
            topk_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        targets = np.array([0, 1, 1])
        matrix = confusion_matrix(logits, targets)
        assert matrix.tolist() == [[1, 0], [1, 1]]

    def test_class_accuracy_nan_for_missing(self):
        logits = np.array([[1.0, 0.0]])
        targets = np.array([0])
        acc = class_accuracy(logits, targets)
        assert acc[0] == 1.0
        assert np.isnan(acc[1])

    def test_empty_targets_raise(self):
        with pytest.raises(ShapeError):
            top1_accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_non_2d_logits_raise(self):
        with pytest.raises(ShapeError):
            top1_accuracy(np.zeros(4), np.zeros(4, dtype=int))


class TestReporting:
    def test_percent(self):
        assert percent(0.1234) == "12.34%"
        assert percent(0.5, digits=0) == "50%"

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = table.split("\n")
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_format_table_title(self):
        assert format_table(["x"], [["1"]], title="T").startswith("T\n")

    def test_format_curves(self):
        text = format_curves([1, 2], {"s1": [0.5, 0.6], "s2": [0.7, 0.8]})
        assert "s1" in text and "60.00%" in text

    def test_histogram_renders(self):
        values = np.concatenate([np.zeros(50), np.ones(10)])
        text = text_histogram(values, bins=2)
        assert "█" in text
        assert "50" in text

    def test_histogram_empty(self):
        assert "no data" in text_histogram(np.empty(0))


class TestOverheadReport:
    def test_ratios(self):
        report = OverheadReport(
            label="m",
            baseline_seconds=1.0,
            protected_seconds=1.1,
            baseline_memory_bytes=1000,
            protected_memory_bytes=1060,
        )
        assert report.runtime_overhead == pytest.approx(0.10, abs=1e-9)
        assert report.memory_overhead == pytest.approx(0.06, abs=1e-9)

    def test_row_formatting(self):
        report = OverheadReport("m", 0.001, 0.0011, 2**20, 2**20 + 2**18)
        row = report.row()
        assert row[0] == "m"
        assert row[3] == "10.00%"
        assert row[4] == "1.00"
