"""Transient activation-fault injection: surgery, arming, campaigns."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core.bounded_relu import GBReLU
from repro.errors import ConfigurationError
from repro.fault import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultLayer,
    ActivationFaultModel,
)


def _model(seed=0):
    return nn.Sequential(
        nn.Linear(6, 12, rng=seed), nn.ReLU(), nn.Linear(12, 4, rng=seed + 1)
    )


def _batch(rng=None, n=8):
    rng = rng or np.random.default_rng(0)
    return Tensor(rng.normal(size=(n, 6)).astype(np.float32))


class TestActivationFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ActivationFaultModel()
        with pytest.raises(ConfigurationError):
            ActivationFaultModel(fault_rate=0.1, n_flips=2)
        with pytest.raises(ConfigurationError):
            ActivationFaultModel(fault_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ActivationFaultModel(n_flips=-1)

    def test_describe(self):
        assert "rate" in ActivationFaultModel.at_rate(1e-6).describe()
        assert "/layer" in ActivationFaultModel.exact(3).describe()


class TestActivationFaultLayer:
    def test_passthrough_when_disarmed(self):
        layer = ActivationFaultLayer()
        x = _batch()
        out = layer(x)
        assert out is x  # literally untouched

    def test_armed_quantises_and_flips(self):
        layer = ActivationFaultLayer()
        layer.arm(ActivationFaultModel.exact(4), np.random.default_rng(0))
        x = _batch()
        out = layer(x)
        assert layer.flips_injected == 4
        assert out.data.shape == x.data.shape
        assert not np.array_equal(out.data, x.data)

    def test_zero_flips_is_pure_quantisation(self):
        layer = ActivationFaultLayer()
        layer.arm(ActivationFaultModel.exact(0), np.random.default_rng(0))
        x = _batch()
        out = layer(x)
        # Q15.16 resolution on small values: within 1 ulp.
        np.testing.assert_allclose(out.data, x.data, atol=1.0 / 65536)

    def test_fresh_faults_each_forward(self):
        layer = ActivationFaultLayer()
        layer.arm(ActivationFaultModel.exact(2), np.random.default_rng(0))
        x = _batch()
        a = layer(x).data.copy()
        b = layer(x).data.copy()
        assert layer.flips_injected == 4
        assert not np.array_equal(a, b)

    def test_disarm_restores_passthrough(self):
        layer = ActivationFaultLayer()
        layer.arm(ActivationFaultModel.exact(2), np.random.default_rng(0))
        layer.disarm()
        x = _batch()
        assert layer(x) is x


class TestActivationFaultInjector:
    def test_instruments_all_activations(self):
        model = _model()
        injector = ActivationFaultInjector(model)
        assert injector.sites == ["1"]

    def test_instruments_protected_activations(self):
        model = _model()
        model.set_submodule("1", GBReLU(2.0))
        injector = ActivationFaultInjector(model)
        assert injector.sites == ["1"]

    def test_no_sites_raises(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=0))
        with pytest.raises(ConfigurationError):
            ActivationFaultInjector(model)

    def test_inactive_model_output_unchanged(self):
        model = _model()
        x = _batch()
        before = model(x).data.copy()
        ActivationFaultInjector(model)
        np.testing.assert_array_equal(model(x).data, before)

    def test_active_context_corrupts_and_restores(self):
        model = _model()
        x = _batch()
        before = model(x).data.copy()
        injector = ActivationFaultInjector(model)
        with injector.active(ActivationFaultModel.exact(16), seed=0):
            corrupted = model(x).data.copy()
            assert injector.flips_injected == 16
        assert not np.array_equal(corrupted, before)
        np.testing.assert_array_equal(model(x).data, before)

    def test_remove_restores_module_tree(self):
        model = _model()
        x = _batch()
        before = model(x).data.copy()
        injector = ActivationFaultInjector(model)
        removed = injector.remove()
        assert removed == 1
        assert type(model.get_submodule("1")).__name__ == "ReLU"
        np.testing.assert_array_equal(model(x).data, before)

    def test_active_after_remove_raises(self):
        model = _model()
        injector = ActivationFaultInjector(model)
        injector.remove()
        with pytest.raises(ConfigurationError):
            with injector.active(ActivationFaultModel.exact(1), seed=0):
                pass

    def test_deterministic_given_seed(self):
        outs = []
        for _ in range(2):
            model = _model()
            injector = ActivationFaultInjector(model)
            with injector.active(ActivationFaultModel.exact(8), seed=123):
                outs.append(model(_batch()).data.copy())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_parameters_untouched(self):
        """Transient faults must never corrupt stored parameters."""
        model = _model()
        snapshot = {n: p.data.copy() for n, p in model.named_parameters()}
        injector = ActivationFaultInjector(model)
        with injector.active(ActivationFaultModel.at_rate(1e-3), seed=0):
            model(_batch())
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, snapshot[name])


class TestActivationFaultCampaign:
    def test_runs_trials(self):
        model = _model()
        injector = ActivationFaultInjector(model)
        x = _batch()

        def evaluate() -> float:
            out = model(x)
            return float(np.mean(out.data.argmax(axis=1) == 0))

        campaign = ActivationFaultCampaign(injector, evaluate, trials=3, seed=0)
        result = campaign.run(ActivationFaultModel.exact(4))
        assert result.trials == 3
        assert np.all(result.flip_counts == 4)

    def test_high_rate_hurts_accuracy(self, trained_model, test_loader):
        from repro.core.training import evaluate_accuracy

        clean = evaluate_accuracy(trained_model, test_loader, max_batches=1)
        injector = ActivationFaultInjector(trained_model)
        campaign = ActivationFaultCampaign(
            injector,
            lambda: evaluate_accuracy(trained_model, test_loader, max_batches=1),
            trials=2,
            seed=0,
        )
        hurt = campaign.run(ActivationFaultModel.at_rate(3e-4))
        assert hurt.mean < clean

    def test_invalid_trials(self):
        model = _model()
        injector = ActivationFaultInjector(model)
        with pytest.raises(ConfigurationError):
            ActivationFaultCampaign(injector, lambda: 0.0, trials=0)
