"""Burst (multi-bit upset) fault model: expansion, containment, matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BurstFaultModel,
    FaultCampaign,
    FaultInjector,
    FaultSites,
    expand_bursts,
)
from repro.quant import quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(8, 16, rng=seed), nn.ReLU(), nn.Linear(16, 4, rng=seed + 1)
    )
    return quantize_module(model)


class TestExpandBursts:
    def test_single_burst_expansion(self):
        starts = FaultSites(np.array([5]), np.array([10]))
        sites = expand_bursts(starts, 4)
        assert len(sites) == 4
        np.testing.assert_array_equal(sites.word_positions, [5, 5, 5, 5])
        np.testing.assert_array_equal(sorted(sites.bit_positions), [10, 11, 12, 13])

    def test_length_one_is_identity(self):
        starts = FaultSites(np.array([1, 2, 3]), np.array([0, 5, 31]))
        sites = expand_bursts(starts, 1)
        assert len(sites) == 3
        assert set(zip(sites.word_positions, sites.bit_positions)) == {
            (1, 0),
            (2, 5),
            (3, 31),
        }

    def test_overlapping_bursts_dedupe(self):
        starts = FaultSites(np.array([0, 0]), np.array([4, 6]))
        sites = expand_bursts(starts, 4)  # 4..7 and 6..9 overlap on 6, 7
        assert len(sites) == 6
        assert set(sites.bit_positions.tolist()) == {4, 5, 6, 7, 8, 9}

    def test_empty_starts(self):
        assert len(expand_bursts(FaultSites.empty(), 4)) == 0

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            expand_bursts(FaultSites.empty(), 0)


class TestBurstFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstFaultModel(burst_length=0, n_bursts=1)
        with pytest.raises(ConfigurationError):
            BurstFaultModel(burst_length=4)  # neither rate nor count
        with pytest.raises(ConfigurationError):
            BurstFaultModel(burst_length=4, burst_rate=0.1, n_bursts=2)
        with pytest.raises(ConfigurationError):
            BurstFaultModel(burst_length=4, burst_rate=1.5)

    def test_bursts_fit_inside_words(self):
        injector = FaultInjector(_model())
        sites = injector.sample(BurstFaultModel.exact(6, 40), rng=0)
        assert sites.bit_positions.max() <= 31
        assert sites.bit_positions.min() >= 0

    def test_exact_burst_count_flips(self):
        injector = FaultInjector(_model())
        length = 4
        sites = injector.sample(BurstFaultModel.exact(length, 25), rng=1)
        # Overlap is possible but rare in a big space; at least one burst
        # worth of flips, at most all distinct.
        assert length <= len(sites) <= 25 * length
        # Each hit word carries at least `length` flipped bits unless two
        # bursts overlapped there.
        _, counts = np.unique(sites.word_positions, return_counts=True)
        assert counts.min() >= 1

    def test_burst_too_long_for_word(self):
        injector = FaultInjector(_model())
        with pytest.raises(ConfigurationError):
            injector.sample(BurstFaultModel.exact(40, 1), rng=0)

    def test_matching_rate_expected_flips(self):
        """matching_rate reproduces the iid expected flip count."""
        injector = FaultInjector(_model())
        bit_rate = 0.001
        model = BurstFaultModel.matching_rate(4, bit_rate, word_bits=32)
        counts = [
            len(injector.sample(model, rng=seed)) for seed in range(200)
        ]
        expected = bit_rate * injector.total_bits
        measured = float(np.mean(counts))
        assert expected * 0.7 < measured < expected * 1.3

    def test_matching_rate_rejects_oversized_burst(self):
        with pytest.raises(ConfigurationError):
            BurstFaultModel.matching_rate(40, 1e-3, word_bits=32)

    def test_deterministic_by_seed(self):
        injector = FaultInjector(_model())
        model = BurstFaultModel.exact(3, 10)
        a = injector.sample(model, rng=7)
        b = injector.sample(model, rng=7)
        np.testing.assert_array_equal(a.word_positions, b.word_positions)
        np.testing.assert_array_equal(a.bit_positions, b.bit_positions)

    def test_campaign_accepts_burst_model(self, trained_model, test_loader):
        from repro.core.training import evaluate_accuracy

        quantize_module(trained_model)
        injector = FaultInjector(trained_model)
        campaign = FaultCampaign(
            injector,
            lambda: evaluate_accuracy(trained_model, test_loader, max_batches=1),
            trials=2,
            seed=0,
        )
        result = campaign.run(BurstFaultModel.exact(4, 4))
        assert result.trials == 2
        assert np.all(result.flip_counts <= 16)

    def test_describe(self):
        assert "L=4" in BurstFaultModel.exact(4, 2).describe()
        assert "start_rate" in BurstFaultModel(
            burst_length=2, burst_rate=1e-4
        ).describe()

    @given(
        length=st.integers(min_value=1, max_value=8),
        n_bursts=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_burst_sites_always_adjacent_runs(self, length, n_bursts, seed):
        """Within each word, flipped bits form unions of length-L runs —
        so every flipped bit has a neighbour within the burst span."""
        injector = FaultInjector(_model())
        sites = injector.sample(BurstFaultModel.exact(length, n_bursts), rng=seed)
        assert len(sites) <= n_bursts * length
        if length == 1 or len(sites) == 0:
            return
        for word in np.unique(sites.word_positions):
            bits = np.sort(sites.bit_positions[sites.word_positions == word])
            gaps = np.diff(bits)
            # A lone isolated bit would need a gap > L on both sides AND
            # be a run of length 1; runs must be at least `length` long
            # unless two bursts overlapped (which only merges runs).
            runs = np.split(bits, np.where(gaps > 1)[0] + 1)
            assert all(run.size >= length for run in runs)
