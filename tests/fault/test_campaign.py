"""Fault campaigns and statistics."""

import numpy as np
import pytest

from repro import nn
from repro.fault import (
    BitFlipFaultModel,
    CampaignResult,
    FaultCampaign,
    FaultInjector,
    accuracy_drop,
    critical_bit_threshold,
    sdc_probability,
)
from repro.quant import quantize_module


def _campaign(trials=5, seed=0):
    model = quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )
    injector = FaultInjector(model)
    calls = {"n": 0}

    def evaluate() -> float:
        calls["n"] += 1
        # Accuracy proxy: fraction of finite, in-range parameter values —
        # deterministic and sensitive to injected faults.
        total, bad = 0, 0
        for param in model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total

    return FaultCampaign(injector, evaluate, trials=trials, seed=seed), calls


class TestCampaign:
    def test_runs_all_trials(self):
        campaign, calls = _campaign(trials=7)
        result = campaign.run(BitFlipFaultModel.exact(3))
        assert result.trials == 7
        assert calls["n"] == 7
        assert (result.flip_counts == 3).all()

    def test_deterministic_by_seed(self):
        a, _ = _campaign(seed=5)
        b, _ = _campaign(seed=5)
        spec = BitFlipFaultModel.at_rate(1e-3)
        ra = a.run(spec)
        rb = b.run(spec)
        np.testing.assert_array_equal(ra.accuracies, rb.accuracies)
        np.testing.assert_array_equal(ra.flip_counts, rb.flip_counts)

    def test_different_seeds_differ(self):
        a, _ = _campaign(seed=1)
        b, _ = _campaign(seed=2)
        spec = BitFlipFaultModel.at_rate(5e-3)
        assert not np.array_equal(a.run(spec).flip_counts, b.run(spec).flip_counts)

    def test_sweep_covers_rates(self):
        campaign, _ = _campaign(trials=2)
        sweep = campaign.run_sweep((1e-4, 1e-3))
        assert sweep.rates == (1e-4, 1e-3)
        assert len(sweep.mean_curve()) == 2

    def test_sweep_lookup_tolerates_float_recomputation(self):
        """Regression: 3 * 1e-6 != 3e-6 exactly; lookups must still hit."""
        campaign, _ = _campaign(trials=2)
        sweep = campaign.run_sweep((3e-6, 1e-3))
        assert sweep[3 * 1e-6] is sweep.results[3e-6]
        assert sweep[0.001 * (1 + 1e-13)] is sweep.results[1e-3]
        assert 3 * 1e-6 in sweep
        assert 5e-4 not in sweep

    def test_sweep_lookup_miss_lists_available_rates(self):
        campaign, _ = _campaign(trials=2)
        sweep = campaign.run_sweep((1e-4, 1e-3))
        with pytest.raises(KeyError, match="0.0001"):
            sweep[7e-2]

    def test_invalid_trials(self):
        campaign, _ = _campaign()
        with pytest.raises(ValueError):
            FaultCampaign(campaign.injector, campaign.evaluate, trials=0)


class TestResultStatistics:
    def _result(self, values):
        return CampaignResult(
            BitFlipFaultModel.exact(1),
            np.asarray(values, dtype=np.float64),
            np.ones(len(values), dtype=np.int64),
        )

    def test_summary_stats(self):
        result = self._result([0.9, 0.8, 1.0, 0.7])
        assert result.mean == pytest.approx(0.85)
        assert result.median == pytest.approx(0.85)
        assert result.min == 0.7
        assert result.max == 1.0

    def test_box_stats_ordering(self):
        result = self._result([0.2, 0.4, 0.6, 0.8, 1.0])
        box = result.box_stats()
        assert box["min"] <= box["q1"] <= box["median"] <= box["q3"] <= box["max"]

    def test_summary_text(self):
        assert "mean" in self._result([0.5, 0.5]).summary()

    def test_accuracy_drop(self):
        assert accuracy_drop(0.95, self._result([0.5, 0.7])) == pytest.approx(0.35)

    def test_sdc_probability(self):
        result = self._result([0.95, 0.5, 0.94, 0.2])
        assert sdc_probability(result, baseline=0.95, tolerance=0.01) == 0.5

    def test_critical_bit_threshold(self):
        vulnerability = {
            0: self._result([0.95]),
            16: self._result([0.945]),
            24: self._result([0.5]),
            31: self._result([0.1]),
        }
        assert critical_bit_threshold(vulnerability, baseline=0.95) == 24

    def test_critical_bit_none(self):
        vulnerability = {0: self._result([0.95])}
        assert critical_bit_threshold(vulnerability, baseline=0.95) is None
