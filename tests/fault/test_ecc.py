"""SEC-DED ECC memory model: code geometry, decode semantics, composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BitFlipFaultModel,
    ECCProtectedInjector,
    FaultCampaign,
    FaultInjector,
    FaultSites,
    SECDEDCode,
    StuckAtFaultModel,
    ecc_memory_bytes,
)
from repro.quant import quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(8, 16, rng=seed), nn.ReLU(), nn.Linear(16, 4, rng=seed + 1)
    )
    return quantize_module(model)


def _ecc(model=None, **kwargs):
    model = model or _model()
    return ECCProtectedInjector(FaultInjector(model), **kwargs), model


class TestSECDEDCode:
    def test_hamming_39_32(self):
        code = SECDEDCode(32)
        assert code.parity_bits == 7
        assert code.total_bits == 39
        assert code.storage_overhead == pytest.approx(7 / 32)

    def test_hamming_22_16(self):
        code = SECDEDCode(16)
        assert code.parity_bits == 6
        assert code.total_bits == 22

    def test_hamming_13_8(self):
        code = SECDEDCode(8)
        assert code.parity_bits == 5
        assert code.total_bits == 13

    def test_single_data_bit(self):
        # r=2: 2^2 >= 1+2+1; +1 overall parity → 3 check bits.
        assert SECDEDCode(1).parity_bits == 3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            SECDEDCode(0)

    def test_str(self):
        assert str(SECDEDCode(32)) == "SEC-DED(39,32)"

    @given(data_bits=st.integers(min_value=1, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_hamming_bound_holds(self, data_bits):
        code = SECDEDCode(data_bits)
        r = code.parity_bits - 1
        assert (1 << r) >= data_bits + r + 1
        # Minimality: one fewer check bit would violate the bound.
        if r > 1:
            assert (1 << (r - 1)) < data_bits + (r - 1) + 1


class TestMemoryAccounting:
    def test_ecc_memory_exceeds_plain(self):
        model = _model()
        plain_words = model.num_parameters()
        assert ecc_memory_bytes(model) == int(round(plain_words * 39 / 8))


class TestDecodeSemantics:
    def test_single_flips_all_corrected(self):
        injector, _ = _ecc()
        # Distinct words guarantee k=1 per word.
        n = injector.total_words
        raw = FaultSites(
            np.arange(0, min(n, 20), dtype=np.int64),
            np.full(min(n, 20), 5, dtype=np.int64),
        )
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert len(effective) == 0
        assert outcome.corrected_words == min(n, 20)
        assert outcome.detected_words == 0
        assert outcome.escaped_words == 0

    def test_double_flip_pass_policy_keeps_data_bits(self):
        injector, _ = _ecc(double_policy="pass")
        raw = FaultSites(np.array([3, 3]), np.array([4, 35]))  # 1 data + 1 parity
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert outcome.detected_words == 1
        assert len(effective) == 1  # only the data-bit flip lands
        assert effective.bit_positions[0] == 4

    def test_double_flip_zero_policy_blanks_word(self):
        model = nn.Linear(2, 2, bias=False, rng=0)
        model.weight.data = np.array([[1.0, 0.5], [0.25, -0.75]], dtype=np.float32)
        quantize_module(model)
        injector = ECCProtectedInjector(FaultInjector(model), double_policy="zero")
        raw = FaultSites(np.array([0, 0]), np.array([2, 3]))
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert outcome.zeroed_words == 1
        with injector.inject(effective):
            assert model.weight.data.reshape(-1)[0] == 0.0
        assert model.weight.data.reshape(-1)[0] == 1.0  # restored

    def test_triple_flip_escapes_with_miscorrection(self):
        injector, _ = _ecc(miscorrect=True)
        raw = FaultSites(np.array([7, 7, 7]), np.array([1, 2, 3]))
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert outcome.escaped_words == 1
        assert outcome.miscorrections == 1
        # Data flips pass; the bogus correction may add/remove one more.
        assert 2 <= len(effective) <= 4

    def test_triple_flip_no_miscorrection(self):
        injector, _ = _ecc(miscorrect=False)
        raw = FaultSites(np.array([7, 7, 7]), np.array([1, 2, 3]))
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert outcome.miscorrections == 0
        assert len(effective) == 3

    def test_parity_only_hits_never_corrupt(self):
        injector, _ = _ecc(double_policy="pass")
        raw = FaultSites(np.array([1, 1, 2]), np.array([33, 38, 36]))
        effective, outcome = injector._decode(raw, np.random.default_rng(0))
        assert len(effective) == 0
        assert outcome.detected_words == 1  # word 1 had a double hit
        assert outcome.corrected_words == 1  # word 2 had a single hit


class TestInjectorSurface:
    def test_total_bits_includes_parity(self):
        injector, model = _ecc()
        assert injector.total_bits == model.num_parameters() * 39

    def test_campaign_compatible(self, trained_model, test_loader):
        from repro.core.training import evaluate_accuracy

        quantize_module(trained_model)
        ecc = ECCProtectedInjector(FaultInjector(trained_model))
        campaign = FaultCampaign(
            ecc,
            lambda: evaluate_accuracy(trained_model, test_loader, max_batches=1),
            trials=2,
            seed=0,
        )
        result = campaign.run(BitFlipFaultModel.at_rate(1e-5))
        assert result.trials == 2

    def test_ecc_suppresses_sparse_faults(self):
        """At rates where faults land in distinct words, ECC corrects
        everything: the effective site list is empty."""
        injector, _ = _ecc()
        # ~10 raw flips over ~8.5k codeword bits: doubles are unlikely
        # but possible; check over several seeds that most trials yield
        # zero effective flips and none exceeds the raw count.
        empty = 0
        for seed in range(20):
            sites = injector.sample(BitFlipFaultModel.exact(10), rng=seed)
            assert len(sites) <= 10 + injector.last_outcome.miscorrections
            empty += len(sites) == 0
        assert empty >= 15

    def test_dense_faults_overwhelm_ecc(self):
        """When many words carry multi-bit hits, faults get through."""
        injector, _ = _ecc()
        sites = injector.sample(BitFlipFaultModel.at_rate(0.05), rng=0)
        assert len(sites) > 0
        assert injector.lifetime_outcome.escaped_words > 0

    def test_rejects_non_bitflip_models(self):
        injector, _ = _ecc()
        with pytest.raises(ConfigurationError):
            injector.sample(StuckAtFaultModel.exact(1, 4), rng=0)

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            _ecc(double_policy="retry")

    def test_rejects_mismatched_code_width(self):
        with pytest.raises(ConfigurationError):
            _ecc(code=SECDEDCode(16))

    def test_param_filter_respected(self):
        injector, _ = _ecc()
        fault_model = BitFlipFaultModel.at_rate(
            0.02, param_filter=lambda name: name.startswith("0.")
        )
        sites = injector.sample(fault_model, rng=0)
        limit = injector.injector.count_words(lambda n: n.startswith("0."))
        if len(sites):
            assert sites.word_positions.max() < limit

    def test_effective_sites_are_data_bits(self):
        injector, _ = _ecc()
        for seed in range(5):
            sites = injector.sample(BitFlipFaultModel.at_rate(0.02), rng=seed)
            if len(sites):
                assert sites.bit_positions.max() < 32

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_outcome_words_partition_hit_words(self, seed):
        injector, _ = _ecc()
        injector.sample(BitFlipFaultModel.at_rate(0.01), rng=seed)
        outcome = injector.last_outcome
        # Every raw-hit word is counted exactly once across the buckets.
        assert outcome.corrected_words >= 0
        total_classified = (
            outcome.corrected_words + outcome.detected_words + outcome.escaped_words
        )
        assert total_classified <= outcome.raw_flips
        if outcome.raw_flips:
            assert total_classified > 0
