"""Cross-cutting property tests over the whole fault-model zoo.

Invariants every fault model must satisfy, checked uniformly: sites in
range, determinism by seed, exact restoration, and XOR involution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.fault import (
    BitFlipFaultModel,
    BurstFaultModel,
    FaultInjector,
    StuckAtFaultModel,
    WordFaultModel,
)
from repro.quant import FORMATS, quantize, quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(5, 10, rng=seed), nn.ReLU(), nn.Linear(10, 3, rng=seed + 1)
    )
    return quantize_module(model)


FAULT_MODELS = [
    BitFlipFaultModel.exact(17),
    BitFlipFaultModel.at_rate(2e-3),
    StuckAtFaultModel.exact(0, 25),
    StuckAtFaultModel.exact(1, 25),
    BurstFaultModel.exact(4, 5),
    WordFaultModel.exact("random", 4),
    WordFaultModel.exact("zero", 4),
    WordFaultModel.exact("max", 4),
]
IDS = [m.describe() for m in FAULT_MODELS]


@pytest.mark.parametrize("fault_model", FAULT_MODELS, ids=IDS)
class TestUniversalInvariants:
    def test_sites_in_range(self, fault_model):
        injector = FaultInjector(_model())
        sites = injector.sample(fault_model, rng=3)
        if len(sites) == 0:
            return
        assert sites.word_positions.min() >= 0
        assert sites.word_positions.max() < injector.total_words
        assert sites.bit_positions.min() >= 0
        assert sites.bit_positions.max() < 32

    def test_sites_are_distinct_pairs(self, fault_model):
        injector = FaultInjector(_model())
        sites = injector.sample(fault_model, rng=4)
        pairs = set(zip(sites.word_positions, sites.bit_positions))
        assert len(pairs) == len(sites)

    def test_deterministic_by_seed(self, fault_model):
        injector = FaultInjector(_model())
        a = injector.sample(fault_model, rng=11)
        b = injector.sample(fault_model, rng=11)
        np.testing.assert_array_equal(a.word_positions, b.word_positions)
        np.testing.assert_array_equal(a.bit_positions, b.bit_positions)

    def test_restore_is_bit_exact(self, fault_model):
        model = _model()
        injector = FaultInjector(model)
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        sites = injector.sample(fault_model, rng=5)
        with injector.inject(sites):
            pass
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name], err_msg=name)

    def test_apply_is_deterministic_from_clean_memory(self, fault_model):
        """apply() always derives the faulty state from the clean
        snapshot, so restore → re-apply reproduces it bit-exactly."""
        model = _model()
        injector = FaultInjector(model)
        sites = injector.sample(fault_model, rng=6)
        injector.apply(sites)
        first = {n: p.data.copy() for n, p in model.named_parameters()}
        injector.restore()
        injector.apply(sites)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, first[name], err_msg=name)
        injector.restore()


class TestCatalogFormatsRoundtrip:
    @given(
        value=st.floats(min_value=-100.0, max_value=100.0),
        key=st.sampled_from(sorted(FORMATS)),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantise_within_resolution_or_saturated(self, value, key):
        fmt = FORMATS[key]
        snapped = float(quantize(np.array([value]), fmt)[0])
        if fmt.min_value <= value <= fmt.max_value:
            # decode() returns float32, whose representation error
            # (2^-23 relative) can exceed half a ulp of the finest
            # formats (Q7.24) — allow both error sources.
            tolerance = fmt.resolution / 2 + abs(value) * 2**-23 + 1e-9
            assert abs(snapped - value) <= tolerance
        else:
            assert snapped in (
                pytest.approx(fmt.min_value, rel=1e-6),
                pytest.approx(fmt.max_value, rel=1e-6),
            )

    @given(key=st.sampled_from(sorted(FORMATS)))
    @settings(max_examples=10, deadline=None)
    def test_quantise_is_idempotent(self, key):
        fmt = FORMATS[key]
        rng = np.random.default_rng(0)
        values = rng.normal(scale=3.0, size=64).astype(np.float64)
        once = quantize(values, fmt)
        twice = quantize(once, fmt)
        np.testing.assert_array_equal(once, twice)
