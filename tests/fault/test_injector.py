"""The fault injector: exact restore, filtering, determinism."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import BitFlipFaultModel, FaultInjector, FaultSites
from repro.quant import quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(6, 10, rng=seed), nn.ReLU(), nn.Linear(10, 3, rng=seed + 1)
    )
    return quantize_module(model)


def _snapshot(model):
    return {name: param.data.copy() for name, param in model.named_parameters()}


class TestInjector:
    def test_fault_space_size(self):
        model = _model()
        injector = FaultInjector(model)
        assert injector.total_words == model.num_parameters()
        assert injector.total_bits == model.num_parameters() * 32

    def test_inject_changes_parameters(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        sites = injector.sample(BitFlipFaultModel.exact(20), rng=0)
        with injector.inject(sites) as count:
            assert count == 20
            changed = any(
                not np.array_equal(param.data, before[name])
                for name, param in model.named_parameters()
            )
            assert changed

    def test_restore_is_bit_exact(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        sites = injector.sample(BitFlipFaultModel.exact(50), rng=1)
        with injector.inject(sites):
            pass
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_restore_after_exception(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        sites = injector.sample(BitFlipFaultModel.exact(5), rng=2)
        with pytest.raises(RuntimeError, match="boom"):
            with injector.inject(sites):
                raise RuntimeError("boom")
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_zero_flip_trial(self):
        model = _model()
        injector = FaultInjector(model)
        with injector.inject(FaultSites.empty()) as count:
            assert count == 0

    def test_sampling_deterministic_by_seed(self):
        injector = FaultInjector(_model())
        spec = BitFlipFaultModel.exact(10)
        a = injector.sample(spec, rng=9)
        b = injector.sample(spec, rng=9)
        np.testing.assert_array_equal(a.word_positions, b.word_positions)
        np.testing.assert_array_equal(a.bit_positions, b.bit_positions)

    def test_param_filter_restricts_targets(self):
        model = _model()
        injector = FaultInjector(model)
        spec = BitFlipFaultModel.exact(
            200, param_filter=lambda name: name.startswith("0.")
        )
        sites = injector.sample(spec, rng=0)
        before = _snapshot(model)
        with injector.inject(sites):
            # Only layer 0 parameters may differ.
            for name, param in model.named_parameters():
                if not name.startswith("0."):
                    np.testing.assert_array_equal(param.data, before[name])

    def test_param_filter_matching_nothing_raises(self):
        injector = FaultInjector(_model())
        spec = BitFlipFaultModel.exact(1, param_filter=lambda name: False)
        with pytest.raises(ConfigurationError):
            injector.sample(spec, rng=0)

    def test_double_apply_without_restore_raises(self):
        injector = FaultInjector(_model())
        sites = injector.sample(BitFlipFaultModel.exact(1), rng=0)
        injector.apply(sites)
        with pytest.raises(ConfigurationError):
            injector.apply(sites)
        injector.restore()

    def test_refresh_while_active_raises(self):
        injector = FaultInjector(_model())
        injector.apply(injector.sample(BitFlipFaultModel.exact(1), rng=0))
        with pytest.raises(ConfigurationError):
            injector.refresh()
        injector.restore()

    def test_refresh_picks_up_new_values(self):
        model = _model()
        injector = FaultInjector(model)
        first = next(model.parameters())
        first.data = np.zeros_like(first.data)
        injector.refresh()
        with injector.inject(FaultSites.empty()):
            pass
        np.testing.assert_array_equal(first.data, np.zeros_like(first.data))

    def test_describe_site(self):
        injector = FaultInjector(_model())
        text = injector.describe_site(0, 31)
        assert "0.weight" in text and "bit 31" in text

    def test_no_parameters_raises(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(nn.ReLU())

    def test_apply_rejects_out_of_range_word(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        bad = FaultSites(np.array([injector.total_words]), np.array([0]))
        with pytest.raises(ConfigurationError):
            injector.apply(bad)
        # Nothing was corrupted and the injector is immediately reusable.
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert not injector._active
        with injector.inject(injector.sample(BitFlipFaultModel.exact(1), rng=0)):
            pass

    def test_apply_rejects_out_of_range_bit(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        bad = FaultSites(np.array([0]), np.array([32]))
        with pytest.raises(ConfigurationError):
            injector.apply(bad)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert not injector._active

    def test_apply_rejects_negative_positions(self):
        injector = FaultInjector(_model())
        with pytest.raises(ConfigurationError):
            injector.apply(FaultSites(np.array([-1]), np.array([0])))
        with pytest.raises(ConfigurationError):
            injector.apply(FaultSites(np.array([0]), np.array([-1])))
        assert not injector._active

    def test_inject_with_invalid_sites_leaves_injector_clean(self):
        model = _model()
        injector = FaultInjector(model)
        bad = FaultSites(np.array([injector.total_words + 7]), np.array([0]))
        with pytest.raises(ConfigurationError):
            with injector.inject(bad):
                pytest.fail("inject must not enter the context on bad sites")
        assert not injector._active

    def test_mid_apply_failure_restores_everything(self, monkeypatch):
        """A fault mid-apply (after some parameters were already flipped)
        must restore the flipped prefix and deactivate the injector."""
        import repro.fault.injector as injector_module

        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        # Sites spanning the first and last parameter force multiple
        # flip_bits calls; the second one explodes.
        sites = FaultSites(
            np.array([0, injector.total_words - 1]), np.array([30, 30])
        )
        real_flip_bits = injector_module.flip_bits
        calls = {"n": 0}

        def exploding_flip_bits(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated mid-apply fault")
            return real_flip_bits(*args, **kwargs)

        monkeypatch.setattr(injector_module, "flip_bits", exploding_flip_bits)
        with pytest.raises(RuntimeError, match="mid-apply"):
            injector.apply(sites)
        assert calls["n"] == 2
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])
        assert not injector._active
        monkeypatch.setattr(injector_module, "flip_bits", real_flip_bits)
        with injector.inject(sites) as count:
            assert count == 2

    def test_single_flip_changes_single_value(self):
        model = _model()
        injector = FaultInjector(model)
        before = _snapshot(model)
        sites = FaultSites(np.array([0]), np.array([16]))
        with injector.inject(sites):
            after = _snapshot(model)
            total_changed = sum(
                (after[name] != before[name]).sum() for name in before
            )
            assert total_changed == 1
