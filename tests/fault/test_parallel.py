"""The parallel campaign engine: executors, determinism, early stop."""

import pickle

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BitFlipFaultModel,
    CampaignAggregator,
    EarlyStop,
    FaultCampaign,
    FaultInjector,
    ProcessExecutor,
    SerialExecutor,
    TrialOutcome,
    TrialRunner,
    TrialWork,
    make_executor,
)
from repro.quant import quantize_module


def _model():
    return quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )


class _ParamHealth:
    """Picklable accuracy proxy: fraction of parameter values in range.

    Deterministic in the injected fault pattern, so campaigns built on
    it are bit-reproducible across execution backends (including spawn,
    where lambdas cannot travel).
    """

    def __init__(self, model):
        self.model = model

    def __call__(self) -> float:
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


def _campaign(workers=0, trials=8, seed=0, **kwargs):
    model = _model()
    injector = FaultInjector(model)
    return FaultCampaign(
        injector,
        _ParamHealth(model),
        trials=trials,
        seed=seed,
        workers=workers,
        **kwargs,
    )


class TestExecutorSelection:
    def test_zero_one_none_are_serial(self):
        for workers in (0, 1, None):
            assert isinstance(make_executor(workers), SerialExecutor)

    def test_many_is_process_pool(self):
        executor = make_executor(4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_executor_instance_passes_through(self):
        executor = SerialExecutor()
        assert make_executor(executor) is executor

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(-1)

    def test_process_executor_needs_two_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(1)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(2, start_method="teleport")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(2, chunk_size=0)

    def test_campaign_workers_property(self):
        assert _campaign(workers=0).workers == 0
        assert _campaign(workers=4).workers == 4


class TestParallelDeterminism:
    def test_parallel_matches_serial_bit_exactly(self):
        """The tentpole contract: workers=4 == workers=0, bit for bit."""
        spec = BitFlipFaultModel.at_rate(5e-3)
        serial = _campaign(workers=0, seed=11).run(spec, tag="det")
        parallel = _campaign(workers=4, seed=11).run(spec, tag="det")
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)
        np.testing.assert_array_equal(serial.flip_counts, parallel.flip_counts)

    def test_sweep_parallel_matches_serial(self):
        rates = (1e-3, 5e-3)
        serial = _campaign(workers=0, seed=2).run_sweep(rates, tag="s")
        parallel = _campaign(workers=2, seed=2).run_sweep(rates, tag="s")
        for rate in rates:
            np.testing.assert_array_equal(
                serial[rate].accuracies, parallel[rate].accuracies
            )
            np.testing.assert_array_equal(
                serial[rate].flip_counts, parallel[rate].flip_counts
            )

    def test_trial_seeds_are_schedule_independent(self):
        spec = BitFlipFaultModel.exact(3)
        a = _campaign(seed=4).trial_seeds(spec, tag="t")
        b = _campaign(seed=4, workers=4).trial_seeds(spec, tag="t")
        assert a == b
        assert len(set(a)) == len(a)

    def test_exact_flip_counts_across_pool(self):
        result = _campaign(workers=2, trials=5).run(BitFlipFaultModel.exact(3))
        assert (result.flip_counts == 3).all()
        assert result.trials == 5

    @pytest.mark.skipif(
        "spawn" not in __import__("multiprocessing").get_all_start_methods(),
        reason="platform has no spawn start method",
    )
    def test_spawn_backend_matches_serial(self):
        """Spawn pickles the whole campaign state — the portable path."""
        spec = BitFlipFaultModel.exact(4)
        serial = _campaign(workers=0, trials=2, seed=6).run(spec, tag="sp")
        spawned = _campaign(
            workers=2, trials=2, seed=6, start_method="spawn"
        ).run(spec, tag="sp")
        np.testing.assert_array_equal(serial.accuracies, spawned.accuracies)
        np.testing.assert_array_equal(serial.flip_counts, spawned.flip_counts)

    def test_runtime_evaluator_matches_across_pool(self):
        """The compiled-runtime snapshot path: workers recompile plans
        after transport and still reproduce the serial stream exactly."""
        from repro.data.loader import DataLoader
        from repro.data.synthetic import (
            SYNTH_MEAN,
            SYNTH_STD,
            SyntheticImageDataset,
        )
        from repro.data.transforms import Normalize
        from repro.eval.evaluator import Evaluator
        from repro.models.registry import build_model

        def campaign(workers, **kwargs):
            model = quantize_module(
                build_model(
                    "lenet", num_classes=10, scale=0.25, image_size=16, seed=0
                )
            )
            dataset = SyntheticImageDataset(
                num_classes=10, num_samples=128, image_size=16, seed=0, split="test"
            )
            evaluator = Evaluator(
                DataLoader(
                    dataset,
                    batch_size=64,
                    transform=Normalize(SYNTH_MEAN, SYNTH_STD),
                ),
                runtime=True,
            )
            # A clean-accuracy pass first, as `repro evaluate --runtime`
            # does: compiles (and registers) a plan on the model in the
            # parent *before* the pool pickles the campaign state.
            evaluator.accuracy(model)
            return FaultCampaign(
                FaultInjector(model),
                evaluator.bind(model),
                trials=3,
                seed=5,
                workers=workers,
                **kwargs,
            )

        spec = BitFlipFaultModel.at_rate(1e-4)
        serial = campaign(0).run(spec, tag="rt")
        with campaign(2) as pooled_campaign:
            pooled = pooled_campaign.run(spec, tag="rt")
        np.testing.assert_array_equal(serial.accuracies, pooled.accuracies)
        np.testing.assert_array_equal(serial.flip_counts, pooled.flip_counts)
        # Spawn pickles the model after plan compilation — the path that
        # used to die on the plan registry's weakrefs.
        with campaign(2, start_method="spawn") as spawn_campaign:
            spawned = spawn_campaign.run(spec, tag="rt")
        np.testing.assert_array_equal(serial.accuracies, spawned.accuracies)
        np.testing.assert_array_equal(serial.flip_counts, spawned.flip_counts)


class TestPoolLifecycle:
    def test_pool_persists_across_runs(self):
        """A sweep pays worker start-up once, not once per rate."""
        campaign = _campaign(workers=2, trials=3)
        campaign.run(BitFlipFaultModel.exact(1), tag="a")
        pool = campaign.executor._pool
        assert pool is not None
        campaign.run(BitFlipFaultModel.exact(2), tag="b")
        assert campaign.executor._pool is pool
        campaign.close()
        assert campaign.executor._pool is None

    def test_context_manager_releases_pool(self):
        with _campaign(workers=2, trials=2) as campaign:
            campaign.run(BitFlipFaultModel.exact(1))
            assert campaign.executor._pool is not None
        assert campaign.executor._pool is None

    def test_early_stop_discards_speculative_pool(self):
        campaign = _campaign(workers=2, trials=10)
        result = campaign.run(
            BitFlipFaultModel.exact(1),
            early_stop=EarlyStop(ci_halfwidth=1.0, min_trials=2),
        )
        assert result.trials == 2
        # The abandoned trials were terminated with their pool; the next
        # run transparently restarts one and stays deterministic.
        assert campaign.executor._pool is None
        full = campaign.run(BitFlipFaultModel.exact(1))
        np.testing.assert_array_equal(full.accuracies[:2], result.accuracies)
        campaign.close()

    def test_serial_close_is_noop(self):
        campaign = _campaign(workers=0, trials=2)
        campaign.run(BitFlipFaultModel.exact(1))
        campaign.close()


class TestEarlyStop:
    def test_stops_at_min_trials_when_converged(self):
        campaign = _campaign(trials=20)
        result = campaign.run(
            BitFlipFaultModel.exact(1),
            early_stop=EarlyStop(ci_halfwidth=1.0, min_trials=3),
        )
        assert result.trials == 3

    def test_serial_and_parallel_stop_identically(self):
        spec = BitFlipFaultModel.at_rate(5e-3)
        stop = EarlyStop(ci_halfwidth=0.5, min_trials=2)
        serial = _campaign(workers=0, trials=12, seed=9).run(
            spec, tag="es", early_stop=stop
        )
        parallel = _campaign(workers=4, trials=12, seed=9).run(
            spec, tag="es", early_stop=stop
        )
        assert serial.trials == parallel.trials
        np.testing.assert_array_equal(serial.accuracies, parallel.accuracies)

    def test_tight_tolerance_runs_everything(self):
        result = _campaign(trials=5).run(
            BitFlipFaultModel.at_rate(5e-3),
            early_stop=EarlyStop(ci_halfwidth=1e-12, min_trials=2),
        )
        # Noisy accuracies under a microscopic tolerance: no early exit
        # unless the CI degenerates (all-equal accuracies).
        assert result.trials == 5 or result.std == 0.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            EarlyStop(ci_halfwidth=0.0)
        with pytest.raises(ConfigurationError):
            EarlyStop(ci_halfwidth=0.1, confidence=1.5)
        with pytest.raises(ConfigurationError):
            EarlyStop(ci_halfwidth=0.1, min_trials=1)


class TestAggregator:
    def test_accumulates_in_order(self):
        agg = CampaignAggregator()
        agg.add(TrialOutcome(0, 0.9, 3))
        agg.add(TrialOutcome(1, 0.7, 2))
        assert agg.trials == 2
        assert agg.mean == pytest.approx(0.8)
        result = agg.result(BitFlipFaultModel.exact(1))
        np.testing.assert_array_equal(result.accuracies, [0.9, 0.7])
        np.testing.assert_array_equal(result.flip_counts, [3, 2])

    def test_out_of_order_outcome_rejected(self):
        agg = CampaignAggregator()
        with pytest.raises(ConfigurationError):
            agg.add(TrialOutcome(3, 0.9, 1))

    def test_halfwidth_infinite_below_two_trials(self):
        agg = CampaignAggregator()
        agg.add(TrialOutcome(0, 0.9, 1))
        assert agg.ci_halfwidth() == float("inf")

    def test_empty_aggregator_has_no_result(self):
        with pytest.raises(ConfigurationError):
            CampaignAggregator().result(BitFlipFaultModel.exact(1))


class TestWorkerTransport:
    def test_trial_runner_pickle_roundtrip(self):
        """The spawn payload: one pickle, shared model reference intact."""
        model = _model()
        injector = FaultInjector(model)
        runner = TrialRunner(injector, _ParamHealth(model))
        clone = pickle.loads(pickle.dumps(runner))
        assert clone.evaluate.model is clone.injector.module
        work = TrialWork(
            index=0, sites=injector.sample(BitFlipFaultModel.exact(5), rng=42)
        )
        assert runner(work) == clone(work)

    def test_active_injector_refuses_pickle(self):
        injector = FaultInjector(_model())
        injector.apply(injector.sample(BitFlipFaultModel.exact(1), rng=0))
        with pytest.raises(ConfigurationError):
            pickle.dumps(injector)
        injector.restore()
        pickle.dumps(injector)

    def test_injector_pickle_rebuilds_clean_state(self):
        injector = FaultInjector(_model())
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.total_words == injector.total_words
        for mine, theirs in zip(injector._clean, clone._clean):
            np.testing.assert_array_equal(mine, theirs)
        # The rebuilt injector is fully operational.
        sites = clone.sample(BitFlipFaultModel.exact(2), rng=1)
        with clone.inject(sites) as count:
            assert count == 2
