"""Replica-batched campaigns: bit-identity with the per-trial path.

``FaultCampaign(replicas=R)`` is a pure scheduling knob: trials are
evaluated in lane groups that share one compiled clean-prefix forward,
but the accuracy/SDC stream must be *bit-identical* — same float32
accuracies, same flip counts, same order — to ``replicas="off"``.  The
suite pins that across registry architectures, the auto default, the
unquantised first-group fallback, and the knob's validation surface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.errors import ConfigurationError
from repro.eval.evaluator import Evaluator
from repro.fault import AUTO_REPLICAS, BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models.registry import build_model
from repro.quant import quantize_module

ARCHS = ["lenet", "alexnet", "resnet18", "resnet50"]
SPEC = BitFlipFaultModel.at_rate(3e-6)


def _campaign(name, replicas, trials=6, quantize=True, scale=None):
    if scale is None:
        scale = 0.5 if name == "lenet" else 0.125
    model = build_model(name, num_classes=10, scale=scale, image_size=16, seed=0)
    if quantize:
        model = quantize_module(model)
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=128, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=64, transform=Normalize(SYNTH_MEAN, SYNTH_STD)),
        runtime=True,
    )
    return FaultCampaign(
        FaultInjector(model),
        evaluator.bind(model),
        trials=trials,
        seed=0,
        replicas=replicas,
    )


@pytest.mark.parametrize("name", ARCHS)
def test_replica_batched_stream_bit_identical(name):
    """The tentpole acceptance, per architecture: same bytes, any width."""
    serial = _campaign(name, replicas="off").run(SPEC)
    batched = _campaign(name, replicas=3).run(SPEC)
    assert serial.accuracies.tobytes() == batched.accuracies.tobytes()
    assert serial.flip_counts.tobytes() == batched.flip_counts.tobytes()


def test_auto_matches_serial_and_group_width_is_default():
    campaign = _campaign("lenet", replicas="auto")
    assert campaign.replicas == AUTO_REPLICAS
    serial = _campaign("lenet", replicas="off").run(SPEC)
    batched = campaign.run(SPEC)
    assert serial.accuracies.tobytes() == batched.accuracies.tobytes()
    assert serial.flip_counts.tobytes() == batched.flip_counts.tobytes()


def test_unquantised_model_first_group_fallback_is_identical():
    """Before the first restore an unquantised model's live params are
    not canonically clean (decode∘encode is lossy), so the first group
    must take the exact per-trial loop — and still match serially."""
    serial = _campaign("lenet", replicas="off", quantize=False).run(SPEC)
    batched = _campaign("lenet", replicas=4, quantize=False).run(SPEC)
    assert serial.accuracies.tobytes() == batched.accuracies.tobytes()
    assert serial.flip_counts.tobytes() == batched.flip_counts.tobytes()


def test_zero_flip_trials_replay_clean_accuracy():
    """at_rate draws zero flips for some trials; the replica path must
    serve those lanes from the shared clean pass, not skip them."""
    result = _campaign("lenet", replicas=4, trials=8).run(SPEC)
    assert (result.flip_counts == 0).any()
    clean = _campaign("lenet", replicas="off", trials=8).run(SPEC)
    assert result.accuracies.tobytes() == clean.accuracies.tobytes()


class TestReplicasKnob:
    def _lambda_campaign(self, replicas):
        from repro import nn

        model = quantize_module(
            nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        )
        return FaultCampaign(
            FaultInjector(model), lambda: 1.0, trials=2, seed=0, replicas=replicas
        )

    def test_auto_without_lane_hook_falls_back_to_per_trial(self):
        campaign = self._lambda_campaign("auto")
        assert campaign.replicas == 0
        assert campaign.run(SPEC).trials == 2

    def test_explicit_width_without_lane_hook_is_an_error(self):
        with pytest.raises(ConfigurationError, match="lane_accuracies"):
            self._lambda_campaign(4)

    def test_width_one_means_off(self):
        assert _campaign("lenet", replicas=1).replicas == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            self._lambda_campaign(-2)

    def test_garbage_spelling_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            self._lambda_campaign("many")


def test_lane_accuracies_matches_inject_loop_directly():
    """The Evaluator hook itself (no campaign): lanes == serial loop."""
    model = quantize_module(
        build_model("alexnet", num_classes=10, scale=0.25, image_size=16, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=64, image_size=16, seed=1, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=32, transform=Normalize(SYNTH_MEAN, SYNTH_STD)),
        runtime=True,
    )
    injector = FaultInjector(model)
    site_sets = [injector.sample(BitFlipFaultModel.exact(2), rng=lane) for lane in range(3)]
    site_sets.append(injector.sample(BitFlipFaultModel.exact(0), rng=9))

    bound = evaluator.bind(model)
    lanes = bound.lane_accuracies(injector, site_sets)

    serial = []
    for sites in site_sets:
        with injector.inject(sites):
            serial.append(bound())
    assert np.asarray(lanes).tobytes() == np.asarray(serial).tobytes()
