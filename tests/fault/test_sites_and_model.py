"""Fault models and site sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fault import BitFlipFaultModel, PAPER_FAULT_RATES, sample_distinct, sample_sites


class TestFaultModel:
    def test_paper_rates(self):
        assert PAPER_FAULT_RATES == (1e-7, 1e-6, 3e-6, 1e-5, 3e-5)

    def test_requires_exactly_one_spec(self):
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel()
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel(fault_rate=1e-5, n_flips=3)

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel(fault_rate=1.5)

    def test_negative_flips(self):
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel(n_flips=-1)

    def test_duplicate_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel(n_flips=1, allowed_bits=(3, 3))

    def test_empty_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            BitFlipFaultModel(n_flips=1, allowed_bits=())

    def test_describe(self):
        assert "rate=1e-05" in BitFlipFaultModel.at_rate(1e-5).describe()
        spec = BitFlipFaultModel.exact(3, allowed_bits=(31,))
        assert "n_flips=3" in spec.describe()
        assert "31" in spec.describe()


class TestSampleDistinct:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_distinct_and_in_range(self, seed, count):
        population = 1000
        rng = np.random.default_rng(seed)
        draw = sample_distinct(rng, population, count)
        assert len(draw) == count
        assert len(set(draw.tolist())) == count
        assert draw.min() >= 0 and draw.max() < population

    def test_dense_draw(self):
        rng = np.random.default_rng(0)
        draw = sample_distinct(rng, 10, 9)
        assert len(set(draw.tolist())) == 9

    def test_full_population(self):
        rng = np.random.default_rng(0)
        draw = sample_distinct(rng, 8, 8)
        assert sorted(draw.tolist()) == list(range(8))

    def test_zero_count(self):
        assert len(sample_distinct(np.random.default_rng(0), 100, 0)) == 0

    def test_overdraw_raises(self):
        with pytest.raises(ConfigurationError):
            sample_distinct(np.random.default_rng(0), 5, 6)

    def test_deterministic(self):
        a = sample_distinct(np.random.default_rng(7), 10_000, 20)
        b = sample_distinct(np.random.default_rng(7), 10_000, 20)
        np.testing.assert_array_equal(a, b)


class TestSampleSites:
    def test_exact_count(self):
        sites = sample_sites(0, total_words=100, word_bits=32, n_flips=17)
        assert len(sites) == 17

    def test_binomial_mean(self):
        """Flip counts across seeds must match Binomial(total_bits, rate)."""
        total_words, rate = 1000, 1e-3
        counts = [
            len(sample_sites(seed, total_words, 32, fault_rate=rate))
            for seed in range(200)
        ]
        expected = total_words * 32 * rate  # = 32
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)

    def test_allowed_bits_respected(self):
        sites = sample_sites(
            1, total_words=50, word_bits=32, n_flips=40, allowed_bits=(30, 31)
        )
        assert set(sites.bit_positions.tolist()) <= {30, 31}

    def test_bit_out_of_range_raises(self):
        with pytest.raises(ConfigurationError):
            sample_sites(0, 10, 16, n_flips=1, allowed_bits=(16,))

    def test_pairs_are_distinct(self):
        sites = sample_sites(3, total_words=4, word_bits=4, n_flips=16)
        pairs = set(zip(sites.word_positions.tolist(), sites.bit_positions.tolist()))
        assert len(pairs) == 16

    def test_empty_fault_space_raises(self):
        with pytest.raises(ConfigurationError):
            sample_sites(0, total_words=0, word_bits=32, n_flips=1)

    def test_word_positions_in_range(self):
        sites = sample_sites(5, total_words=7, word_bits=32, n_flips=50)
        assert sites.word_positions.max() < 7
