"""Outcome classification, confidence intervals, group vulnerability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BitFlipFaultModel,
    CampaignResult,
    FaultCampaign,
    FaultInjector,
    classify_outcomes,
    mean_confidence_interval,
    parameter_group_vulnerability,
    wilson_interval,
)
from repro.quant import quantize_module


def _result(accuracies):
    accuracies = np.asarray(accuracies, dtype=np.float64)
    return CampaignResult(
        BitFlipFaultModel.exact(1),
        accuracies,
        np.ones(accuracies.size, dtype=np.int64),
    )


class TestClassifyOutcomes:
    def test_buckets(self):
        result = _result([0.90, 0.89, 0.60, 0.15, 0.10])
        breakdown = classify_outcomes(
            result, baseline=0.90, masked_tolerance=0.02, critical_accuracy=0.2
        )
        assert breakdown.masked == 2
        assert breakdown.degraded == 1
        assert breakdown.critical == 2
        assert breakdown.trials == 5
        assert breakdown.masked_fraction == pytest.approx(0.4)

    def test_fractions_sum_to_one(self):
        result = _result(np.linspace(0.0, 1.0, 21))
        breakdown = classify_outcomes(result, baseline=0.95)
        assert (
            breakdown.masked_fraction
            + breakdown.degraded_fraction
            + breakdown.critical_fraction
        ) == pytest.approx(1.0)

    def test_all_masked_when_no_damage(self):
        result = _result([0.9, 0.9, 0.9])
        breakdown = classify_outcomes(result, baseline=0.9)
        assert breakdown.masked == 3
        assert breakdown.critical == 0

    def test_baseline_validation(self):
        with pytest.raises(ConfigurationError):
            classify_outcomes(_result([0.5]), baseline=1.5)

    def test_summary_readable(self):
        text = classify_outcomes(_result([0.9, 0.1]), baseline=0.9).summary()
        assert "masked" in text and "critical" in text

    @given(
        accs=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40
        ),
        baseline=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_always_partition(self, accs, baseline):
        breakdown = classify_outcomes(_result(accs), baseline=baseline)
        assert breakdown.masked + breakdown.degraded + breakdown.critical == len(accs)
        assert min(breakdown.masked, breakdown.degraded, breakdown.critical) >= 0


class TestMeanConfidenceInterval:
    def test_brackets_mean(self):
        samples = [0.8, 0.85, 0.82, 0.79, 0.84]
        low, high = mean_confidence_interval(samples)
        assert low < np.mean(samples) < high

    def test_accepts_campaign_result(self):
        low, high = mean_confidence_interval(_result([0.5, 0.6, 0.7]))
        assert low < 0.6 < high

    def test_single_sample_degenerate(self):
        assert mean_confidence_interval([0.4]) == (0.4, 0.4)

    def test_constant_samples_degenerate(self):
        assert mean_confidence_interval([0.5, 0.5, 0.5]) == (0.5, 0.5)

    def test_wider_at_higher_confidence(self):
        samples = [0.2, 0.5, 0.9, 0.4, 0.6]
        low95, high95 = mean_confidence_interval(samples, confidence=0.95)
        low99, high99 = mean_confidence_interval(samples, confidence=0.99)
        assert high99 - low99 > high95 - low95

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([])
        with pytest.raises(ConfigurationError):
            mean_confidence_interval([0.5, 0.6], confidence=1.0)


class TestWilsonInterval:
    def test_known_value(self):
        # 8/10 at 95%: classic Wilson ≈ (0.49, 0.94).
        low, high = wilson_interval(8, 10)
        assert low == pytest.approx(0.49, abs=0.02)
        assert high == pytest.approx(0.94, abs=0.02)

    def test_stays_in_unit_interval_at_extremes(self):
        low0, high0 = wilson_interval(0, 5)
        lowN, highN = wilson_interval(5, 5)
        assert low0 == 0.0 and high0 < 0.6
        assert lowN > 0.4 and highN == 1.0

    def test_narrows_with_trials(self):
        w10 = np.diff(wilson_interval(5, 10))[0]
        w100 = np.diff(wilson_interval(50, 100))[0]
        assert w100 < w10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(3, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(6, 5)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 5, confidence=0.0)

    @given(
        trials=st.integers(min_value=1, max_value=500),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_interval_contains_point_estimate(self, trials, data):
        successes = data.draw(st.integers(min_value=0, max_value=trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0


class TestParameterGroupVulnerability:
    def test_groups_run_and_report(self):
        model = nn.Sequential(
            nn.Linear(6, 12, rng=0), nn.ReLU(), nn.Linear(12, 4, rng=1)
        )
        quantize_module(model)
        injector = FaultInjector(model)
        x = np.random.default_rng(0).normal(size=(16, 6)).astype(np.float32)

        from repro.autograd import Tensor

        def evaluate() -> float:
            return float(np.mean(model(Tensor(x)).data.argmax(axis=1) == 0))

        campaign = FaultCampaign(injector, evaluate, trials=2, seed=0)
        results = parameter_group_vulnerability(
            campaign, ["0.", "2."], flips_per_trial=4
        )
        assert set(results) == {"0.", "2."}
        for result in results.values():
            assert result.trials == 2
            assert np.all(result.flip_counts == 4)

    def test_prefix_filters_are_independent(self):
        """Regression guard for the classic late-binding closure bug."""
        model = nn.Sequential(
            nn.Linear(6, 12, rng=0), nn.ReLU(), nn.Linear(12, 4, rng=1)
        )
        quantize_module(model)
        injector = FaultInjector(model)
        first_words = injector.count_words(lambda n: n.startswith("0."))

        campaign = FaultCampaign(injector, lambda: 0.0, trials=1, seed=0)
        # Sample manually per prefix through the same machinery.
        for prefix, expect_low in (("0.", True), ("2.", False)):
            fault_model = BitFlipFaultModel.exact(
                64, param_filter=lambda n, p=prefix: n.startswith(p)
            )
            sites = injector.sample(fault_model, rng=0)
            inside_first = np.all(sites.word_positions < first_words)
            assert bool(inside_first) is expect_low
        assert campaign.trials == 1
