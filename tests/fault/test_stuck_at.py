"""Stuck-at fault model: lowering to flips, masking, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BitFlipFaultModel,
    FaultCampaign,
    FaultInjector,
    FaultSites,
    StuckAtFaultModel,
    active_stuck_sites,
)
from repro.quant import quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(6, 12, rng=seed), nn.ReLU(), nn.Linear(12, 4, rng=seed + 1)
    )
    return quantize_module(model)


class TestReadBits:
    def test_known_word(self):
        """A parameter equal to 1.0 stores Q15.16 word 0x00010000."""
        model = nn.Linear(1, 1, bias=False, rng=0)
        model.weight.data = np.array([[1.0]], dtype=np.float32)
        quantize_module(model)
        injector = FaultInjector(model)
        sites = FaultSites(
            np.zeros(32, dtype=np.int64), np.arange(32, dtype=np.int64)
        )
        bits = injector.read_bits(sites)
        expected = np.zeros(32, dtype=np.int64)
        expected[16] = 1
        np.testing.assert_array_equal(bits, expected)

    def test_negative_word_sign_bit(self):
        model = nn.Linear(1, 1, bias=False, rng=0)
        model.weight.data = np.array([[-1.0]], dtype=np.float32)
        quantize_module(model)
        injector = FaultInjector(model)
        sign = injector.read_bits(
            FaultSites(np.array([0]), np.array([31]))
        )
        assert sign[0] == 1

    def test_empty_sites(self):
        injector = FaultInjector(_model())
        assert injector.read_bits(FaultSites.empty()).size == 0

    def test_out_of_range_rejected(self):
        injector = FaultInjector(_model())
        bad = FaultSites(np.array([injector.total_words]), np.array([0]))
        with pytest.raises(ConfigurationError):
            injector.read_bits(bad)

    def test_reads_clean_snapshot_under_injection(self):
        """read_bits reports pre-fault memory even while faults are live."""
        model = _model()
        injector = FaultInjector(model)
        probe = injector.sample(BitFlipFaultModel.exact(64), rng=3)
        before = injector.read_bits(probe)
        with injector.inject(probe):
            during = injector.read_bits(probe)
        np.testing.assert_array_equal(before, during)


class TestActiveStuckSites:
    def test_only_differing_cells_survive(self):
        model = _model()
        injector = FaultInjector(model)
        cells = injector.sample(BitFlipFaultModel.exact(200), rng=0)
        stored = injector.read_bits(cells)
        active0 = active_stuck_sites(injector, cells, 0)
        active1 = active_stuck_sites(injector, cells, 1)
        assert len(active0) == int(np.sum(stored == 1))
        assert len(active1) == int(np.sum(stored == 0))
        # Partition: every candidate is active for exactly one polarity.
        assert len(active0) + len(active1) == len(cells)

    def test_bad_stuck_value(self):
        injector = FaultInjector(_model())
        with pytest.raises(ConfigurationError):
            active_stuck_sites(injector, FaultSites.empty(), 2)

    def test_flipping_active_sites_realises_stuck_read(self):
        """After injecting the active sites, each cell reads stuck_value.

        Restricted to low bit positions so the faulted values stay exactly
        representable in the model's float32 parameters (a flipped high
        integer bit produces values whose low Q15.16 bits exceed float32
        precision — an injector-internal concern, not a memory one).
        """
        model = _model()
        injector = FaultInjector(model)
        low_bits = tuple(range(20))
        cells = injector.sample(
            BitFlipFaultModel.exact(100, allowed_bits=low_bits), rng=1
        )
        active = active_stuck_sites(injector, cells, 1)
        with injector.inject(active):
            # Re-snapshot through a fresh injector view of the faulty model.
            faulty_view = FaultInjector(model)
            read = faulty_view.read_bits(cells)
        assert np.all(read == 1)


class TestStuckAtFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StuckAtFaultModel(stuck_value=2, n_cells=4)
        with pytest.raises(ConfigurationError):
            StuckAtFaultModel(stuck_value=0)  # neither rate nor count
        with pytest.raises(ConfigurationError):
            StuckAtFaultModel(stuck_value=0, fault_rate=0.1, n_cells=4)

    def test_sample_via_injector_dispatch(self):
        model = _model()
        injector = FaultInjector(model)
        fault_model = StuckAtFaultModel.exact(1, 64)
        sites = injector.sample(fault_model, rng=0)
        assert len(sites) <= 64
        stored = injector.read_bits(sites)
        assert np.all(stored == 0)  # only 0-cells become stuck-at-1 flips

    def test_deterministic_by_seed(self):
        injector = FaultInjector(_model())
        fault_model = StuckAtFaultModel.at_rate(1, 1e-3)
        a = injector.sample(fault_model, rng=42)
        b = injector.sample(fault_model, rng=42)
        np.testing.assert_array_equal(a.word_positions, b.word_positions)
        np.testing.assert_array_equal(a.bit_positions, b.bit_positions)

    def test_masking_rates_are_complementary(self):
        """The same probe cells mask stuck-at-0 iff they store 0, so the
        two polarities' masking rates sum to exactly 1."""
        injector = FaultInjector(_model())
        masked0 = StuckAtFaultModel.at_rate(0, 1e-3).masking_rate(injector, rng=0)
        masked1 = StuckAtFaultModel.at_rate(1, 1e-3).masking_rate(injector, rng=0)
        assert masked0 + masked1 == pytest.approx(1.0)
        # Signed two's-complement weights are a mix of 0- and 1-bits;
        # neither polarity should be fully masked or fully active.
        assert 0.1 < masked0 < 0.9

    def test_high_bits_of_positive_words_mask_stuck_at_zero(self):
        """Conditioned on positive stored words, high integer bits are 0,
        so stuck-at-0 there is (almost) always masked."""
        model = nn.Linear(4, 4, bias=False, rng=0)
        model.weight.data = np.abs(model.weight.data) + 0.01
        quantize_module(model)
        injector = FaultInjector(model)
        high_bits = tuple(range(20, 31))
        masked0 = StuckAtFaultModel(
            stuck_value=0, fault_rate=0.5, allowed_bits=high_bits
        ).masking_rate(injector, rng=0)
        assert masked0 == pytest.approx(1.0)

    def test_campaign_accepts_stuck_model(self, trained_model, test_loader):
        from repro.core.training import evaluate_accuracy

        quantize_module(trained_model)
        injector = FaultInjector(trained_model)
        campaign = FaultCampaign(
            injector,
            lambda: evaluate_accuracy(trained_model, test_loader, max_batches=1),
            trials=2,
            seed=0,
        )
        result = campaign.run(StuckAtFaultModel.exact(1, 8))
        assert result.trials == 2
        assert np.all(result.flip_counts <= 8)

    def test_describe_mentions_polarity(self):
        assert "stuck-at-1" in StuckAtFaultModel.exact(1, 4).describe()
        assert "rate" in StuckAtFaultModel.at_rate(0, 1e-4).describe()

    @given(
        stuck=st.integers(min_value=0, max_value=1),
        n_cells=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_active_site_count_never_exceeds_candidates(self, stuck, n_cells, seed):
        injector = FaultInjector(_model())
        sites = injector.sample(StuckAtFaultModel.exact(stuck, n_cells), rng=seed)
        assert 0 <= len(sites) <= n_cells
        # All surviving sites currently store the opposite bit.
        if len(sites):
            assert np.all(injector.read_bits(sites) != stuck)
