"""Word-replacement faults: lowering, modes, campaign compatibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    FaultCampaign,
    FaultInjector,
    FaultSites,
    WordFaultModel,
    replacement_flips,
)
from repro.quant import quantize_module


def _model(seed=0):
    model = nn.Sequential(
        nn.Linear(6, 12, rng=seed), nn.ReLU(), nn.Linear(12, 4, rng=seed + 1)
    )
    return quantize_module(model)


class TestReplacementFlips:
    def test_zero_target_flips_set_bits(self):
        model = nn.Linear(1, 1, bias=False, rng=0)
        model.weight.data = np.array([[1.5]], dtype=np.float32)  # 0x00018000
        quantize_module(model)
        injector = FaultInjector(model)
        sites = replacement_flips(injector, np.array([0]), np.array([0]))
        assert sorted(sites.bit_positions.tolist()) == [15, 16]

    def test_identity_target_yields_nothing(self):
        injector = FaultInjector(_model())
        words = np.arange(5, dtype=np.int64)
        current = injector.word_values(words)
        sites = replacement_flips(injector, words, current)
        assert len(sites) == 0

    def test_applying_flips_realises_target(self):
        """Injecting the lowered sites makes the words decode to target."""
        model = nn.Linear(2, 2, bias=False, rng=0)
        quantize_module(model)
        injector = FaultInjector(model)
        words = np.arange(4, dtype=np.int64)
        targets = np.array([0, 65536, -65536, 32768], dtype=np.int64)  # 0,1,-1,.5
        sites = replacement_flips(injector, words, targets)
        with injector.inject(sites):
            np.testing.assert_allclose(
                model.weight.data.reshape(-1), [0.0, 1.0, -1.0, 0.5], atol=1e-6
            )

    def test_shape_mismatch(self):
        injector = FaultInjector(_model())
        with pytest.raises(ConfigurationError):
            replacement_flips(injector, np.array([0, 1]), np.array([0]))

    def test_empty(self):
        injector = FaultInjector(_model())
        sites = replacement_flips(
            injector, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert len(sites) == 0


class TestWordFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WordFaultModel(mode="explode", n_words=1)
        with pytest.raises(ConfigurationError):
            WordFaultModel(mode="zero")  # neither rate nor count
        with pytest.raises(ConfigurationError):
            WordFaultModel(mode="zero", fault_rate=0.1, n_words=2)

    def test_zero_mode_zeroes_words(self):
        model = _model()
        injector = FaultInjector(model)
        fault_model = WordFaultModel.exact("zero", 10)
        sites = injector.sample(fault_model, rng=0)
        touched = np.unique(sites.word_positions)
        with injector.inject(sites):
            view = FaultInjector(model)
            np.testing.assert_array_equal(
                view.word_values(touched), np.zeros(touched.size, np.int64)
            )

    def test_max_mode_saturates(self):
        injector = FaultInjector(_model())
        sites = injector.sample(WordFaultModel.exact("max", 3), rng=1)
        # Every chosen word becomes max_raw: high bits must be flipped on
        # for the small weights of this model.
        assert len(sites) > 0
        assert sites.bit_positions.max() >= 29

    def test_random_mode_deterministic_by_seed(self):
        injector = FaultInjector(_model())
        fault_model = WordFaultModel.exact("random", 6)
        a = injector.sample(fault_model, rng=5)
        b = injector.sample(fault_model, rng=5)
        np.testing.assert_array_equal(a.word_positions, b.word_positions)
        np.testing.assert_array_equal(a.bit_positions, b.bit_positions)

    def test_random_mode_half_bits_flip_on_average(self):
        injector = FaultInjector(_model())
        counts = [
            len(injector.sample(WordFaultModel.exact("random", 8), rng=seed))
            for seed in range(30)
        ]
        mean_per_word = float(np.mean(counts)) / 8
        assert 12 < mean_per_word < 20  # E = 16 for 32-bit words

    def test_campaign_compatible(self, trained_model, test_loader):
        from repro.core.training import evaluate_accuracy

        quantize_module(trained_model)
        injector = FaultInjector(trained_model)
        campaign = FaultCampaign(
            injector,
            lambda: evaluate_accuracy(trained_model, test_loader, max_batches=1),
            trials=2,
            seed=0,
        )
        result = campaign.run(WordFaultModel.exact("random", 4))
        assert result.trials == 2
        assert np.all(result.flip_counts <= 4 * 32)

    def test_describe(self):
        assert "word-zero" in WordFaultModel.exact("zero", 2).describe()
        assert "rate" in WordFaultModel.at_rate("random", 1e-5).describe()

    @given(
        mode=st.sampled_from(["random", "zero", "max"]),
        n_words=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_flip_count_bounded_by_word_budget(self, mode, n_words, seed):
        injector = FaultInjector(_model())
        sites = injector.sample(WordFaultModel.exact(mode, n_words), rng=seed)
        assert len(sites) <= n_words * 32
        if len(sites):
            _, per_word = np.unique(sites.word_positions, return_counts=True)
            assert per_word.max() <= 32
