"""End-to-end integration: the paper's claims on the test substrate.

These tests train a real (small) model on SynthCIFAR, protect it with
each scheme, and verify the *qualitative* results of the paper: bounded
activations recover accuracy under bit-flips, FitAct's clean accuracy
respects the δ constraint, and the protection ordering holds at a
meaningful fault rate.
"""

import numpy as np
import pytest

from repro.core import (
    BoundPostTrainer,
    PostTrainingConfig,
    ProtectionConfig,
    evaluate_accuracy,
    profile_activations,
    protect_model,
)
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models import build_model
from repro.quant import quantize_module
from tests.conftest import IMAGE_SIZE, NUM_CLASSES


@pytest.fixture(scope="module")
def protected_zoo(request):
    """Train once, protect with every scheme, campaign at a fixed rate."""
    train_loader = request.getfixturevalue("train_loader")
    test_loader = request.getfixturevalue("test_loader")
    trained = request.getfixturevalue("trained_state")

    def fresh():
        model = build_model(
            "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
        )
        model.load_state_dict(trained["state"])
        return model

    profile = profile_activations(fresh(), train_loader)
    zoo = {}
    for method in ("fitact", "clipact", "ranger", "none"):
        model = fresh()
        if method != "none":
            protect_model(
                model, train_loader, ProtectionConfig(method=method), profile=profile
            )
        if method == "fitact":
            BoundPostTrainer(
                model, PostTrainingConfig(epochs=3, lr=0.02, zeta=1.0, delta=0.03)
            ).run(train_loader, test_loader, reference_accuracy=trained["accuracy"])
        quantize_module(model)
        zoo[method] = {
            "model": model,
            "clean": evaluate_accuracy(model, test_loader),
        }
    # Campaign at a rate that flips ~30 bits in this model — squarely in
    # the band where protection separates (validated in DESIGN.md §5).
    for method, entry in zoo.items():
        injector = FaultInjector(entry["model"])
        rate = 30 / injector.total_bits
        campaign = FaultCampaign(
            injector,
            lambda m=entry["model"]: evaluate_accuracy(m, test_loader),
            trials=8,
            seed=1234,
        )
        entry["faulty"] = campaign.run(BitFlipFaultModel.at_rate(rate)).mean
    zoo["reference"] = trained["accuracy"]
    return zoo


class TestPaperClaims:
    def test_baseline_trains_well(self, protected_zoo):
        assert protected_zoo["reference"] > 0.7

    def test_fitact_clean_accuracy_within_delta(self, protected_zoo):
        """Eq. 8's constraint: A(ΘA) − A(ΘA, ΘR) < δ (+quantisation slack)."""
        drop = protected_zoo["reference"] - protected_zoo["fitact"]["clean"]
        assert drop < 0.03 + 0.02

    def test_baseline_protections_preserve_clean_accuracy(self, protected_zoo):
        for method in ("clipact", "ranger"):
            drop = protected_zoo["reference"] - protected_zoo[method]["clean"]
            assert drop < 0.02, method

    def test_all_protections_beat_unprotected(self, protected_zoo):
        """Paper Fig. 6, observation 1."""
        unprotected = protected_zoo["none"]["faulty"]
        for method in ("fitact", "clipact", "ranger"):
            assert protected_zoo[method]["faulty"] > unprotected + 0.05, method

    def test_fitact_beats_ranger(self, protected_zoo):
        """Paper Fig. 6, observation 3: Ranger is the weakest protection."""
        assert (
            protected_zoo["fitact"]["faulty"]
            > protected_zoo["ranger"]["faulty"] + 0.05
        )

    def test_fitact_at_least_matches_clipact(self, protected_zoo):
        """Paper Fig. 6, observation 2 (tolerance for small-model noise)."""
        assert (
            protected_zoo["fitact"]["faulty"]
            >= protected_zoo["clipact"]["faulty"] - 0.08
        )

    def test_protection_recovers_most_accuracy(self, protected_zoo):
        """FitAct under ~30 flips stays within 30 points of clean."""
        assert (
            protected_zoo["fitact"]["clean"] - protected_zoo["fitact"]["faulty"]
            < 0.30
        )


class TestFaultMechanics:
    def test_unprotected_degrades_under_heavy_faults(
        self, trained_model, test_loader
    ):
        model = quantize_module(trained_model)
        clean = evaluate_accuracy(model, test_loader)
        injector = FaultInjector(model)
        campaign = FaultCampaign(
            injector, lambda: evaluate_accuracy(model, test_loader), trials=6, seed=9
        )
        result = campaign.run(BitFlipFaultModel.exact(200))
        assert result.mean < clean - 0.2

    def test_campaign_leaves_model_clean(self, trained_model, test_loader):
        model = quantize_module(trained_model)
        clean = evaluate_accuracy(model, test_loader)
        injector = FaultInjector(model)
        campaign = FaultCampaign(
            injector, lambda: evaluate_accuracy(model, test_loader), trials=3, seed=2
        )
        campaign.run(BitFlipFaultModel.exact(100))
        assert evaluate_accuracy(model, test_loader) == pytest.approx(clean)
