"""Experiment runners produce well-formed results at smoke scale."""

import numpy as np
import pytest

from repro.eval.experiments import (
    SMOKE,
    StateCache,
    prepare_context,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig5,
    run_granularity_ablation,
    run_posttraining_overhead,
    run_table1,
)

PRESET = SMOKE.with_overrides(
    image_size=16, train_samples=300, test_samples=120, train_epochs=10,
    post_epochs=2, trials=2,
)


@pytest.fixture(scope="module", autouse=True)
def isolated_cache(tmp_path_factory):
    """Point the default experiment cache at a temp dir for this module."""
    import os

    directory = tmp_path_factory.mktemp("exp-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(directory)
    yield directory
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="module")
def context(isolated_cache):
    return prepare_context("lenet", "synth10", PRESET)


class TestContext:
    def test_training_metadata(self, context):
        assert context.reference_accuracy > 0.5
        assert context.training_seconds > 0

    def test_cache_hit_reproduces_weights(self, context):
        reloaded = prepare_context("lenet", "synth10", PRESET)
        assert reloaded.reference_accuracy == context.reference_accuracy
        model_a = context.fresh_model()
        model_b = reloaded.fresh_model()
        for (name, pa), (_, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_protected_model_info(self, context):
        model, info = context.protected_model("clipact")
        assert 0.0 <= info["clean_accuracy"] <= 1.0

    def test_fitact_post_training_memoised(self, context):
        _, first = context.protected_model("fitact")
        _, second = context.protected_model("fitact")
        assert "post_seconds" in first
        assert second["post_seconds"] == first["post_seconds"]


class TestFigureRunners:
    def test_fig1(self, context):
        result = run_fig1(
            preset=PRESET, context=context, fractions=(0.25, 1.0, 2.0), trials=2
        )
        assert len(result.bounds) == 3
        assert result.baseline_accuracy > 0.5
        text = result.to_text()
        assert "FIG1" in text and "global bound" in text
        assert result.best_bound() in result.bounds

    def test_fig2(self, context):
        result = run_fig2(preset=PRESET, context=context, site_index=0)
        assert result.maxima.size > 0
        assert result.dispersion_ratio >= 1.0
        assert "FIG2" in result.to_text()

    def test_fig3(self):
        result = run_fig3(bound=2.0, k=40.0, points=101)
        assert result.peak("ReLU") == pytest.approx(10.0)
        assert result.tail_value("GBReLU") == 0.0
        assert result.tail_value("FitReLU-Naive") == 0.0
        assert result.tail_value("FitReLU") < 0.05
        assert result.peak("FitReLU") <= 2.0 + 1e-5
        assert "FIG3" in result.to_text()

    def test_fig5(self, context):
        result = run_fig5(
            preset=PRESET,
            context=context,
            methods=("clipact", "none"),
        )
        box = result.box(
            "clipact", result.sweep.rates[0]
        )
        assert box["min"] <= box["median"] <= box["max"]
        assert "Clip-Act" in result.to_text()

    def test_granularity_ablation(self, context):
        result = run_granularity_ablation(
            preset=PRESET, context=context, granularities=("neuron", "layer")
        )
        assert len(result.rows) == 2
        words = {row[0]: int(row[1]) for row in result.rows}
        assert words["neuron"] > words["layer"]
        assert "ABL-G" in result.to_text()


class TestOverheadRunners:
    def test_table1_single_model(self, context, tmp_path_factory):
        result = run_table1(
            preset=PRESET,
            models=("lenet",),
            datasets=("synth10",),
            batch_size=16,
            repeats=2,
        )
        assert len(result.rows) == 1
        assert result.rows[0].memory_overhead > 0
        assert "TAB1" in result.to_text()

    def test_posttraining_overhead(self, context):
        result = run_posttraining_overhead(preset=PRESET, models=("lenet",))
        assert len(result.rows) == 1
        assert result.max_ratio() > 0
        assert "§VI-C1" in result.to_text()
