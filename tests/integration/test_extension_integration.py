"""End-to-end flows combining the extension features.

Each test walks a realistic multi-module path: train → protect →
(checkpoint | ECC | activation faults | alternative fault models) →
evaluate, asserting the cross-feature contracts that unit tests cannot
see.
"""

import numpy as np
import pytest

from repro.core import (
    ProtectionConfig,
    load_protected,
    protect_model,
    save_protected,
)
from repro.core.training import evaluate_accuracy
from repro.fault import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultModel,
    BitFlipFaultModel,
    ECCProtectedInjector,
    FaultCampaign,
    FaultInjector,
    StuckAtFaultModel,
    WordFaultModel,
    classify_outcomes,
    mean_confidence_interval,
)
from repro.models.registry import build_model
from repro.quant import quantize_module

NUM_CLASSES = 10
IMAGE_SIZE = 16


def _fresh_copy(trained_state):
    model = build_model(
        "lenet", num_classes=NUM_CLASSES, scale=1.0, image_size=IMAGE_SIZE, seed=0
    )
    model.load_state_dict(trained_state["state"])
    return model


class TestECCWithProtection:
    def test_ecc_recovers_unprotected_at_sparse_budget(
        self, trained_state, test_loader
    ):
        model = _fresh_copy(trained_state)
        quantize_module(model)
        clean = evaluate_accuracy(model, test_loader)

        plain = FaultInjector(model)
        fault_model = BitFlipFaultModel.exact(12)
        evaluate = lambda: evaluate_accuracy(model, test_loader)  # noqa: E731

        bare = FaultCampaign(plain, evaluate, trials=3, seed=0).run(fault_model)
        ecc = FaultCampaign(
            ECCProtectedInjector(plain), evaluate, trials=3, seed=0
        ).run(fault_model)
        # 12 raw flips over ~2.4M codeword bits land in distinct words:
        # ECC corrects them all, so accuracy equals the clean accuracy.
        assert ecc.mean == pytest.approx(clean, abs=1e-9)
        assert ecc.mean >= bare.mean

    def test_ecc_composes_with_fitact_naive(
        self, trained_state, train_loader, test_loader
    ):
        model = _fresh_copy(trained_state)
        protect_model(model, train_loader, ProtectionConfig(method="fitact-naive"))
        quantize_module(model)
        injector = ECCProtectedInjector(FaultInjector(model))
        campaign = FaultCampaign(
            injector,
            lambda: evaluate_accuracy(model, test_loader),
            trials=2,
            seed=0,
        )
        result = campaign.run(BitFlipFaultModel.at_rate(1e-6))
        assert result.mean > 0.5
        assert injector.lifetime_outcome.raw_flips >= 0


class TestCheckpointThenCampaign:
    def test_reloaded_model_faces_identical_faults(
        self, trained_state, train_loader, test_loader, tmp_path
    ):
        model = _fresh_copy(trained_state)
        protect_model(model, train_loader, ProtectionConfig(method="clipact"))
        quantize_module(model)
        path = tmp_path / "clipact.npz"
        save_protected(path, model)
        reloaded, _ = load_protected(
            path,
            lambda: build_model(
                "lenet",
                num_classes=NUM_CLASSES,
                scale=1.0,
                image_size=IMAGE_SIZE,
                seed=0,
            ),
        )
        fault_model = BitFlipFaultModel.exact(24)
        original = FaultCampaign(
            FaultInjector(model),
            lambda: evaluate_accuracy(model, test_loader),
            trials=3,
            seed=7,
        ).run(fault_model)
        twin = FaultCampaign(
            FaultInjector(reloaded),
            lambda: evaluate_accuracy(reloaded, test_loader),
            trials=3,
            seed=7,
        ).run(fault_model)
        # Same seed + bit-identical fault space → identical trial results.
        np.testing.assert_array_equal(original.accuracies, twin.accuracies)


class TestActivationFaultsOnProtectedModels:
    def test_bounded_model_beats_unprotected_under_heavy_upsets(
        self, trained_state, train_loader, test_loader
    ):
        results = {}
        for method in ("none", "fitact-naive"):
            model = _fresh_copy(trained_state)
            if method != "none":
                protect_model(model, train_loader, ProtectionConfig(method=method))
            quantize_module(model)
            injector = ActivationFaultInjector(model)
            campaign = ActivationFaultCampaign(
                injector,
                lambda m=model: evaluate_accuracy(m, test_loader),
                trials=3,
                seed=0,
            )
            results[method] = campaign.run(ActivationFaultModel.exact(48)).mean
        assert results["fitact-naive"] >= results["none"] - 0.05


class TestAlternativeFaultModelsOnProtectedModels:
    @pytest.mark.parametrize(
        "fault_model",
        [
            StuckAtFaultModel.exact(1, 48),
            WordFaultModel.exact("random", 3),
            WordFaultModel.exact("max", 3),
        ],
        ids=["stuck-at-1", "word-random", "word-max"],
    )
    def test_bounds_help_under_every_model(
        self, trained_state, train_loader, test_loader, fault_model
    ):
        means = {}
        for method in ("none", "fitact-naive"):
            model = _fresh_copy(trained_state)
            if method != "none":
                protect_model(model, train_loader, ProtectionConfig(method=method))
            quantize_module(model)
            campaign = FaultCampaign(
                FaultInjector(model),
                lambda m=model: evaluate_accuracy(m, test_loader),
                trials=3,
                seed=1,
            )
            means[method] = campaign.run(fault_model).mean
        assert means["fitact-naive"] >= means["none"] - 0.05


class TestStatisticsOnCampaigns:
    def test_outcomes_and_interval_from_live_campaign(
        self, trained_state, test_loader
    ):
        model = _fresh_copy(trained_state)
        quantize_module(model)
        clean = evaluate_accuracy(model, test_loader)
        campaign = FaultCampaign(
            FaultInjector(model),
            lambda: evaluate_accuracy(model, test_loader),
            trials=4,
            seed=0,
        )
        result = campaign.run(BitFlipFaultModel.exact(32))
        breakdown = classify_outcomes(result, baseline=clean)
        assert breakdown.trials == 4
        assert (
            breakdown.masked + breakdown.degraded + breakdown.critical == 4
        )
        low, high = mean_confidence_interval(result)
        assert low <= result.mean <= high
