"""MobileNetV1: structure, depthwise economy, protection compatibility."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ProtectionConfig, protect_model
from repro.core.surgery import bound_modules, find_activation_sites
from repro.data import DataLoader, SyntheticImageDataset
from repro.errors import ConfigurationError
from repro.models import MOBILENET_PLAN, build_model
from repro.models.mobilenet import MobileNet
from repro.nn.conv import Conv2d


def _batch(n=2, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(n, 3, size, size)).astype(np.float32))


class TestStructure:
    def test_output_shape(self):
        model = build_model("mobilenet", num_classes=10, scale=0.25, seed=0)
        model.eval()
        out = model(_batch())
        assert out.shape == (2, 10)

    def test_plan_has_13_blocks(self):
        assert len(MOBILENET_PLAN) == 13
        model = MobileNet(scale=0.25)
        assert len(list(model.blocks.children())) == 13

    def test_depthwise_layers_are_grouped(self):
        model = MobileNet(scale=0.25)
        depthwise = [
            m
            for m in model.modules()
            if isinstance(m, Conv2d) and m.groups > 1
        ]
        assert len(depthwise) == 13
        for layer in depthwise:
            assert layer.groups == layer.in_channels  # fully depthwise
            assert layer.weight.shape[1] == 1

    def test_separable_blocks_cheaper_than_dense(self):
        """The architecture's point: far fewer weights than a dense conv
        stack of the same widths."""
        model = MobileNet(scale=0.25)
        dw_params = sum(
            p.size
            for m in model.modules()
            if isinstance(m, Conv2d) and m.groups > 1
            for p in m.parameters()
        )
        pw_params = sum(
            p.size
            for m in model.modules()
            if isinstance(m, Conv2d) and m.groups == 1 and m.kernel_size == (1, 1)
            for p in m.parameters()
        )
        # Depthwise 3x3 words are a small fraction of the pointwise 1x1s.
        assert dw_params * 3 < pw_params

    def test_min_image_size_enforced(self):
        with pytest.raises(ConfigurationError):
            MobileNet(image_size=16)

    def test_deterministic_by_seed(self):
        a = MobileNet(scale=0.25, seed=7)
        b = MobileNet(scale=0.25, seed=7)
        for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name)

    def test_forward_eval_deterministic(self):
        model = MobileNet(scale=0.25)
        model.eval()
        x = _batch()
        np.testing.assert_array_equal(model(x).data, model(x).data)


class TestTrainingAndProtection:
    def test_one_training_step_reduces_loss(self):
        from repro.nn.loss import CrossEntropyLoss
        from repro.optim import SGD

        model = MobileNet(scale=0.125, num_classes=4, seed=0)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 3, 32, 32)).astype(np.float32))
        y = rng.integers(0, 4, size=8)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.05)
        losses = []
        for _ in range(6):
            model.zero_grad()
            loss = loss_fn(model(x), y)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]

    def test_protection_surgery_covers_all_relus(self):
        model = MobileNet(scale=0.125, seed=0)
        sites = find_activation_sites(model)
        assert len(sites) == 1 + 2 * 13  # stem + two per separable block

        dataset = SyntheticImageDataset(num_samples=32, image_size=32, seed=0)
        loader = DataLoader(dataset, batch_size=16)
        report = protect_model(
            model, loader, ProtectionConfig(method="fitact-naive")
        )
        assert len(report.replaced_sites) == len(sites)
        assert len(bound_modules(model)) == len(sites)
        model.eval()
        out = model(_batch())
        assert np.all(np.isfinite(out.data))
