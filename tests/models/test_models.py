"""Model zoo: shapes, determinism, activation sites, registry."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import find_activation_sites
from repro.errors import ConfigurationError
from repro.models import (
    MODEL_NAMES,
    PAPER_MODELS,
    build_model,
    register_model,
    scaled_width,
)
from repro.nn import ReLU


def _input(n=2, size=32, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal((n, 3, size, size)).astype(np.float32))


class TestRegistry:
    def test_paper_models_registered(self):
        assert set(PAPER_MODELS) <= set(MODEL_NAMES)

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            build_model("transformer")

    def test_register_custom(self):
        register_model("custom-test", lambda **kw: build_model("lenet", **kw))
        model = build_model("custom-test", num_classes=3, scale=0.5, image_size=16)
        with no_grad():
            assert model(_input(size=16)).shape == (2, 3)

    def test_register_duplicate_raises(self):
        with pytest.raises(ConfigurationError):
            register_model("lenet", lambda **kw: None)

    def test_case_insensitive(self):
        model = build_model("LeNet", scale=0.5, image_size=16)
        assert model is not None


class TestArchitectures:
    @pytest.mark.parametrize(
        "name,scale,size",
        [
            ("lenet", 0.5, 16),
            ("alexnet", 0.125, 32),
            ("vgg11", 0.0625, 32),
            ("vgg16", 0.0625, 32),
            ("resnet18", 0.0625, 32),
            ("resnet50", 0.0625, 32),
        ],
    )
    def test_forward_shape(self, name, scale, size):
        model = build_model(name, num_classes=7, scale=scale, image_size=size, seed=0)
        model.eval()
        with no_grad():
            out = model(_input(size=size))
        assert out.shape == (2, 7)

    def test_deterministic_by_seed(self):
        a = build_model("lenet", scale=0.5, image_size=16, seed=3)
        b = build_model("lenet", scale=0.5, image_size=16, seed=3)
        for (name_a, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data, err_msg=name_a)

    def test_different_seeds_differ(self):
        a = build_model("lenet", scale=0.5, image_size=16, seed=1)
        b = build_model("lenet", scale=0.5, image_size=16, seed=2)
        weights_a = next(a.parameters()).data
        weights_b = next(b.parameters()).data
        assert not np.array_equal(weights_a, weights_b)

    def test_scale_changes_width(self):
        small = build_model("vgg16", scale=0.0625)
        big = build_model("vgg16", scale=0.125)
        assert big.num_parameters() > small.num_parameters()

    def test_vgg16_activation_site_count(self):
        """13 conv ReLUs + 1 classifier ReLU (config D)."""
        model = build_model("vgg16", scale=0.0625)
        assert len(find_activation_sites(model)) == 14

    def test_resnet50_activation_site_count(self):
        """Stem ReLU + 3 per bottleneck × (3+4+6+3) blocks."""
        model = build_model("resnet50", scale=0.0625)
        assert len(find_activation_sites(model)) == 1 + 3 * 16

    def test_alexnet_activation_site_count(self):
        model = build_model("alexnet", scale=0.125)
        assert len(find_activation_sites(model)) == 7

    def test_relu_instances_not_shared(self):
        """Surgery requires one module instance per activation site."""
        model = build_model("resnet50", scale=0.0625)
        relus = [m for m in model.modules() if isinstance(m, ReLU)]
        assert len({id(m) for m in relus}) == len(relus)

    def test_vgg_rejects_tiny_images(self):
        with pytest.raises(ConfigurationError, match="collapses"):
            build_model("vgg16", image_size=16)

    def test_alexnet_image_size_adapts(self):
        model = build_model("alexnet", scale=0.125, image_size=24)
        model.eval()
        with no_grad():
            assert model(_input(size=24)).shape == (2, 10)

    def test_resnet_residual_path(self):
        """Downsample branches appear exactly where shapes change."""
        from repro.models.resnet import Bottleneck
        from repro.nn import Identity

        model = build_model("resnet50", scale=0.0625)
        blocks = [m for m in model.modules() if isinstance(m, Bottleneck)]
        downsampled = [not isinstance(b.downsample, Identity) for b in blocks]
        # First block of each stage reshapes; 16 blocks total.
        assert sum(downsampled) == 4
        assert downsampled[0] and downsampled[3] and downsampled[7] and downsampled[13]


class TestScaledWidth:
    def test_rounding(self):
        assert scaled_width(64, 0.5) == 32
        assert scaled_width(64, 1.0) == 64

    def test_minimum_enforced(self):
        assert scaled_width(64, 0.01) == 4

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            scaled_width(64, 0.0)
