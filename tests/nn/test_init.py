"""Weight initialisers."""

import math

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import init


class TestFanCalculation:
    def test_linear(self):
        assert init.calculate_fan((8, 4)) == (4, 8)

    def test_conv(self):
        fan_in, fan_out = init.calculate_fan((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25

    def test_1d_raises(self):
        with pytest.raises(ShapeError):
            init.calculate_fan((4,))


class TestDistributions:
    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((64, 64), rng, a=math.sqrt(5.0))
        bound = math.sqrt(2.0 / (1 + 5.0)) * math.sqrt(3.0 / 64)
        assert np.abs(weights).max() <= bound + 1e-7

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_normal((256, 256), rng)
        assert weights.std() == pytest.approx(math.sqrt(2.0 / 256), rel=0.05)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((32, 32), rng)
        assert np.abs(weights).max() <= math.sqrt(6.0 / 64) + 1e-7

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_normal((256, 256), rng)
        assert weights.std() == pytest.approx(math.sqrt(2.0 / 512), rel=0.05)

    def test_zeros_and_constant(self):
        assert init.zeros((3,)).tolist() == [0.0, 0.0, 0.0]
        assert init.constant((2,), 1.5).tolist() == [1.5, 1.5]

    def test_dtype_float32(self):
        rng = np.random.default_rng(0)
        assert init.kaiming_uniform((4, 4), rng).dtype == np.float32

    def test_determinism(self):
        a = init.kaiming_uniform((4, 4), np.random.default_rng(3))
        b = init.kaiming_uniform((4, 4), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
