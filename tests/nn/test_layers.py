"""Linear, Conv2d, pooling, dropout, flatten and activation layers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.errors import ConfigurationError


def _x(shape, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal(shape).astype(np.float32))


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(8, 3, rng=0)
        assert layer(_x((4, 8))).shape == (4, 3)

    def test_matches_manual_affine(self):
        layer = nn.Linear(4, 2, rng=0)
        x = _x((3, 4))
        expected = x.data @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_deterministic_init(self):
        a, b = nn.Linear(5, 5, rng=42), nn.Linear(5, 5, rng=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_gradients_flow(self):
        layer = nn.Linear(3, 2, rng=0)
        layer(_x((2, 3))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConv2d:
    def test_output_shape(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        assert layer(_x((2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_weight_layout(self):
        layer = nn.Conv2d(3, 8, (5, 3), rng=0)
        assert layer.weight.shape == (8, 3, 5, 3)

    def test_no_bias(self):
        layer = nn.Conv2d(1, 1, 3, bias=False, rng=0)
        assert layer.bias is None

    def test_deterministic_init(self):
        a, b = nn.Conv2d(2, 4, 3, rng=7), nn.Conv2d(2, 4, 3, rng=7)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_stride_padding_normalised_to_pairs(self):
        # Int and tuple constructions must land on one canonical form,
        # so extra_repr, checkpoint meta, and the runtime compiler agree.
        from_int = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        assert from_int.stride == (2, 2)
        assert from_int.padding == (1, 1)
        from_tuple = nn.Conv2d(3, 8, 3, stride=(2, 1), padding=(0, 1), rng=0)
        assert from_tuple.stride == (2, 1)
        assert from_tuple.padding == (0, 1)
        assert "stride=(2, 2), padding=(1, 1)" in from_int.extra_repr()

    def test_int_and_pair_construction_agree(self):
        x = _x((2, 3, 8, 8))
        a = nn.Conv2d(3, 4, 3, stride=2, padding=1, rng=5)
        b = nn.Conv2d(3, 4, 3, stride=(2, 2), padding=(1, 1), rng=5)
        np.testing.assert_array_equal(a(x).data, b(x).data)


class TestPooling:
    def test_max_pool_module(self):
        assert nn.MaxPool2d(2)(_x((1, 2, 6, 6))).shape == (1, 2, 3, 3)

    def test_avg_pool_module(self):
        assert nn.AvgPool2d(3, stride=2)(_x((1, 2, 7, 7))).shape == (1, 2, 3, 3)

    def test_global_avg_pool(self):
        x = _x((2, 3, 4, 4))
        out = nn.GlobalAvgPool2d()(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)


class TestDropout:
    def test_eval_is_identity(self):
        layer = nn.Dropout(0.5, rng=0)
        layer.eval()
        x = _x((4, 4))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_p_zero_is_identity_in_train(self):
        layer = nn.Dropout(0.0, rng=0)
        x = _x((4, 4))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_train_zeroes_and_rescales(self):
        layer = nn.Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = layer(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        surviving = out[out != 0]
        np.testing.assert_allclose(surviving, 2.0, rtol=1e-6)

    def test_expectation_preserved(self):
        layer = nn.Dropout(0.3, rng=0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        assert layer(x).data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_raises(self):
        with pytest.raises(ConfigurationError):
            nn.Dropout(1.0)


class TestFlattenAndActivations:
    def test_flatten(self):
        assert nn.Flatten()(_x((2, 3, 4))).shape == (2, 12)

    def test_flatten_start_dim(self):
        assert nn.Flatten(start_dim=2)(_x((2, 3, 4, 5))).shape == (2, 3, 20)

    def test_relu_module(self):
        out = nn.ReLU()(Tensor([-1.0, 2.0]))
        assert out.data.tolist() == [0.0, 2.0]

    def test_identity(self):
        x = _x((3,))
        assert nn.Identity()(x) is x

    def test_tanh_sigmoid_softmax(self):
        x = _x((2, 4))
        assert nn.Tanh()(x).shape == (2, 4)
        assert nn.Sigmoid()(x).shape == (2, 4)
        np.testing.assert_allclose(
            nn.Softmax(axis=1)(x).data.sum(axis=1), np.ones(2), rtol=1e-5
        )

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.5)(Tensor([-2.0, 4.0]))
        assert out.data.tolist() == [-1.0, 4.0]


class TestSequential:
    def test_forward_order(self):
        block = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        assert block(_x((3, 4))).shape == (3, 2)

    def test_indexing(self):
        block = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert isinstance(block[0], nn.ReLU)
        assert isinstance(block[-1], nn.Tanh)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            nn.Sequential(nn.ReLU())[3]

    def test_append(self):
        block = nn.Sequential(nn.ReLU())
        block.append(nn.Tanh())
        assert len(block) == 2

    def test_module_list(self):
        items = nn.ModuleList([nn.ReLU(), nn.Tanh()])
        assert len(items) == 2
        assert isinstance(items[1], nn.Tanh)
        with pytest.raises(NotImplementedError):
            items(1)

    def test_gradcheck_through_mlp(self):
        mlp = nn.Sequential(nn.Linear(3, 5, rng=0), nn.Tanh(), nn.Linear(5, 2, rng=1))

        def fn(x):
            return mlp(x)

        gradcheck(fn, [np.random.default_rng(0).standard_normal((2, 3))])
