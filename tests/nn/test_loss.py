"""Loss functions."""

import numpy as np
import pytest
from scipy.special import log_softmax as scipy_log_softmax

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.errors import ShapeError


def _logits(n=5, classes=4, seed=0):
    return np.random.default_rng(seed).standard_normal((n, classes))


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = _logits()
        targets = np.array([0, 1, 2, 3, 0])
        loss = nn.CrossEntropyLoss()(Tensor(logits), targets)
        log_probs = scipy_log_softmax(logits, axis=1)
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 4), -100.0)
        logits[np.arange(3), [1, 2, 0]] = 100.0
        loss = nn.CrossEntropyLoss()(Tensor(logits), np.array([1, 2, 0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_reduction_sum(self):
        logits = _logits()
        targets = np.array([0, 1, 2, 3, 0])
        mean = nn.CrossEntropyLoss(reduction="mean")(Tensor(logits), targets).item()
        total = nn.CrossEntropyLoss(reduction="sum")(Tensor(logits), targets).item()
        assert total == pytest.approx(mean * 5, rel=1e-5)

    def test_reduction_none_shape(self):
        loss = nn.CrossEntropyLoss(reduction="none")(
            Tensor(_logits()), np.array([0, 1, 2, 3, 0])
        )
        assert loss.shape == (5,)

    def test_label_smoothing_increases_loss_on_perfect(self):
        logits = np.full((2, 3), -50.0)
        logits[np.arange(2), [0, 1]] = 50.0
        targets = np.array([0, 1])
        plain = nn.CrossEntropyLoss()(Tensor(logits), targets).item()
        smoothed = nn.CrossEntropyLoss(label_smoothing=0.1)(
            Tensor(logits), targets
        ).item()
        assert smoothed > plain

    def test_gradcheck(self):
        targets = np.array([1, 0, 2])
        loss_fn = nn.CrossEntropyLoss()
        gradcheck(lambda t: loss_fn(t, targets), [_logits(3, 3)])

    def test_wrong_target_shape_raises(self):
        with pytest.raises(ShapeError):
            nn.CrossEntropyLoss()(Tensor(_logits()), np.zeros((5, 2), dtype=np.int64))

    def test_non_2d_logits_raises(self):
        with pytest.raises(ShapeError):
            nn.CrossEntropyLoss()(Tensor(np.zeros(4)), np.zeros(4, dtype=np.int64))

    def test_invalid_reduction_raises(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(reduction="avg")

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss(label_smoothing=1.0)


class TestMSE:
    def test_matches_manual(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = np.array([1.5, 2.0, 2.0], dtype=np.float32)
        loss = nn.MSELoss()(pred, target)
        assert loss.item() == pytest.approx(((0.5**2) + 0 + 1) / 3, rel=1e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            nn.MSELoss()(Tensor(np.zeros(3)), np.zeros(4, dtype=np.float32))

    def test_gradcheck(self):
        target = np.random.default_rng(1).standard_normal((3, 2))
        loss_fn = nn.MSELoss()
        gradcheck(
            lambda t: loss_fn(t, target),
            [np.random.default_rng(0).standard_normal((3, 2))],
        )
