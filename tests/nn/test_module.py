"""Module registration, traversal, state, and surgery mechanics."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError
from repro.nn import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones(3, dtype=np.float32))
        self.register_buffer("running", np.zeros(3, dtype=np.float32))

    def forward(self, x):
        return x


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.right = Leaf()
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return x


class TestRegistration:
    def test_parameters_collected(self):
        tree = Tree()
        names = [name for name, _ in tree.named_parameters()]
        assert names == ["scale", "left.weight", "right.weight"]

    def test_buffers_collected(self):
        tree = Tree()
        names = [name for name, _ in tree.named_buffers()]
        assert sorted(names) == ["left.running", "right.running"]

    def test_num_parameters(self):
        assert Tree().num_parameters() == 7

    def test_named_modules_paths(self):
        paths = [path for path, _ in Tree().named_modules()]
        assert paths == ["", "left", "right"]

    def test_replacing_attribute_updates_registry(self):
        tree = Tree()
        tree.left = Leaf()
        assert len(list(tree.named_parameters())) == 3

    def test_plain_attribute_not_registered(self):
        tree = Tree()
        tree.note = "hello"
        assert "note" not in dict(tree.named_parameters())

    def test_overwriting_module_with_plain_value_unregisters(self):
        tree = Tree()
        tree.left = None
        assert [p for p, _ in tree.named_modules()] == ["", "right"]

    def test_register_parameter_none(self):
        leaf = Leaf()
        leaf.register_parameter("bias", None)
        assert leaf.bias is None
        assert "bias" not in dict(leaf.named_parameters())


class TestSubmodulePaths:
    def test_get_submodule(self):
        tree = Tree()
        assert tree.get_submodule("left") is tree.left
        assert tree.get_submodule("") is tree

    def test_get_submodule_missing_raises(self):
        with pytest.raises(ConfigurationError, match="no submodule"):
            Tree().get_submodule("middle")

    def test_set_submodule_replaces(self):
        tree = Tree()
        new_leaf = Leaf()
        tree.set_submodule("left", new_leaf)
        assert tree.left is new_leaf

    def test_set_submodule_preserves_sequential_order(self):
        """Regression: replacement must not reorder Sequential children."""
        seq = nn.Sequential(nn.ReLU(), nn.Tanh(), nn.Sigmoid())
        seq[1] = nn.Identity()
        kinds = [type(m).__name__ for m in seq]
        assert kinds == ["ReLU", "Identity", "Sigmoid"]

    def test_set_submodule_root_raises(self):
        with pytest.raises(ConfigurationError):
            Tree().set_submodule("", Leaf())


class TestModes:
    def test_train_eval_propagates(self):
        tree = Tree()
        tree.eval()
        assert not tree.training and not tree.left.training
        tree.train()
        assert tree.training and tree.right.training

    def test_requires_grad_toggle(self):
        tree = Tree()
        tree.requires_grad_(False)
        assert all(not p.requires_grad for p in tree.parameters())

    def test_zero_grad(self):
        tree = Tree()
        tree.scale.grad = np.ones(1)
        tree.zero_grad()
        assert tree.scale.grad is None

    def test_apply_visits_all(self):
        visited = []
        Tree().apply(lambda m: visited.append(type(m).__name__))
        assert visited == ["Leaf", "Leaf", "Tree"]


class TestState:
    def test_state_dict_roundtrip(self):
        source, target = Tree(), Tree()
        source.scale.data[:] = 5.0
        source.left.running[:] = 2.0
        target.load_state_dict(source.state_dict())
        assert target.scale.data.tolist() == [5.0]
        assert target.left.running.tolist() == [2.0, 2.0, 2.0]

    def test_state_dict_copies(self):
        tree = Tree()
        state = tree.state_dict()
        state["scale"][:] = 99.0
        assert tree.scale.data.tolist() == [1.0]

    def test_load_wrong_shape_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["scale"] = np.zeros(2)
        with pytest.raises(ShapeError):
            tree.load_state_dict(state)

    def test_load_unexpected_key_strict_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(ConfigurationError, match="unexpected"):
            tree.load_state_dict(state)

    def test_load_missing_key_strict_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state.pop("scale")
        with pytest.raises(ConfigurationError, match="missing"):
            tree.load_state_dict(state)

    def test_load_non_strict_ignores(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        state.pop("scale")
        tree.load_state_dict(state, strict=False)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_repr_contains_children(self):
        text = repr(Tree())
        assert "left" in text and "Leaf" in text
