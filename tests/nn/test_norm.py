"""Batch normalisation semantics."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, gradcheck
from repro.errors import ShapeError


def _x(shape, seed=0, scale=3.0, shift=5.0):
    rng = np.random.default_rng(seed)
    return Tensor((rng.standard_normal(shape) * scale + shift).astype(np.float32))


class TestBatchNorm2d:
    def test_training_normalizes(self):
        bn = nn.BatchNorm2d(4)
        out = bn(_x((8, 4, 5, 5))).data
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(4), abs=1e-4)
        assert out.std(axis=(0, 2, 3)) == pytest.approx(np.ones(4), abs=1e-2)

    def test_affine_applied(self):
        bn = nn.BatchNorm2d(2)
        bn.weight.data[:] = 2.0
        bn.bias.data[:] = 1.0
        out = bn(_x((16, 2, 3, 3))).data
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.ones(2), abs=1e-4)

    def test_running_stats_updated(self):
        bn = nn.BatchNorm2d(3, momentum=1.0)  # copy the batch stats exactly
        x = _x((32, 3, 4, 4))
        bn(x)
        np.testing.assert_allclose(
            bn.running_mean, x.data.mean(axis=(0, 2, 3)), rtol=1e-4
        )
        assert int(bn.num_batches_tracked) == 1

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        bn(_x((16, 2, 3, 3)))  # populate stats
        bn.eval()
        x = _x((4, 2, 3, 3), seed=9)
        out1 = bn(x).data
        out2 = bn(x).data
        np.testing.assert_array_equal(out1, out2)  # eval mode is pure

    def test_eval_no_stat_drift(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(_x((4, 2, 3, 3)))
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_no_affine(self):
        bn = nn.BatchNorm2d(2, affine=False)
        assert bn.weight is None
        assert len(list(bn.parameters())) == 0

    def test_wrong_channels_raises(self):
        with pytest.raises(ShapeError):
            nn.BatchNorm2d(3)(_x((2, 4, 3, 3)))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ShapeError):
            nn.BatchNorm2d(3)(_x((2, 3)))

    def test_gradcheck_training_mode(self):
        bn = nn.BatchNorm2d(2)

        def fn(x):
            return bn(x)

        gradcheck(fn, [np.random.default_rng(0).standard_normal((4, 2, 3, 3))])

    def test_buffers_not_parameters(self):
        bn = nn.BatchNorm2d(2)
        param_names = {name for name, _ in bn.named_parameters()}
        assert param_names == {"weight", "bias"}
        buffer_names = {name for name, _ in bn.named_buffers()}
        assert buffer_names == {"running_mean", "running_var", "num_batches_tracked"}


class TestBatchNorm1d:
    def test_training_normalizes(self):
        bn = nn.BatchNorm1d(5)
        out = bn(_x((64, 5))).data
        assert out.mean(axis=0) == pytest.approx(np.zeros(5), abs=1e-4)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ShapeError):
            nn.BatchNorm1d(5)(_x((2, 5, 3, 3)))

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm1d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "weight" in state
