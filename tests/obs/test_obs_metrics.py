"""MetricsRegistry: families, snapshots, and Prometheus exposition."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.obs import MetricsRegistry, bucket_label, default_registry
from repro.obs.metrics import Histogram


class TestRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "requests_total", "Requests.", labelnames=("endpoint",)
        )
        requests.inc(endpoint="/predict")
        requests.inc(2, endpoint="/predict")
        requests.inc(endpoint="/healthz")
        assert requests.value(endpoint="/predict") == 3
        assert requests.value(endpoint="/healthz") == 1
        assert requests.value(endpoint="/missing") == 0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_registration_is_idempotent_for_same_signature(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "Hits.", labelnames=("a",))
        second = registry.counter("hits_total", "Hits.", labelnames=("a",))
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.")
        with pytest.raises(ValueError):
            registry.counter("hits_total", "Hits.", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.gauge("hits_total", "Hits.")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "Bad.")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "Bad label.", labelnames=("le",))

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        counter = registry.counter("b_total", "B.", labelnames=("k",))
        registry.gauge("a_gauge", "A.").set(1.5)
        counter.inc(k="z")
        counter.inc(k="a")
        snap = registry.snapshot()
        assert list(snap) == ["a_gauge", "b_total"]
        series = snap["b_total"]["series"]
        assert [entry["labels"]["k"] for entry in series] == ["a", "z"]

    def test_reset_clears_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total", "N.")
        counter.inc(4)
        registry.reset()
        assert counter.value() == 0

    def test_registry_refuses_pickling(self):
        with pytest.raises(TypeError):
            pickle.dumps(MetricsRegistry())

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestHistogram:
    def test_snapshot_shape_matches_legacy_serve_contract(self):
        hist = Histogram((1.0, 5.0, math.inf))
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["buckets"] == {"le_1": 1, "le_5": 2, "le_+Inf": 3}
        assert snap["mean"] == round(103.5 / 3, 6)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((5.0, 1.0))

    def test_infinity_bucket_appended_when_missing(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(10.0)
        assert hist.snapshot()["buckets"]["le_+Inf"] == 1

    def test_bucket_label(self):
        assert bucket_label(math.inf) == "+Inf"
        assert bucket_label(2.5) == "2.5"
        assert bucket_label(100.0) == "100"


class TestPrometheusExposition:
    def test_help_type_and_series_lines(self):
        registry = MetricsRegistry()
        registry.counter(
            "requests_total", "Requests served.", labelnames=("endpoint",)
        ).inc(3, endpoint="/predict")
        text = registry.render_prometheus()
        assert "# HELP requests_total Requests served.\n" in text
        assert "# TYPE requests_total counter\n" in text
        assert 'requests_total{endpoint="/predict"} 3\n' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", labelnames=("path",)).inc(
            path='a\\b"c\nd'
        )
        text = registry.render_prometheus()
        assert 'c_total{path="a\\\\b\\"c\\nd"} 1\n' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "H.", buckets=(1.0, 5.0, math.inf))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        lines = registry.render_prometheus().splitlines()
        bucket_lines = [l for l in lines if l.startswith("h_bucket")]
        assert bucket_lines == [
            'h_bucket{le="1"} 2',
            'h_bucket{le="5"} 3',
            'h_bucket{le="+Inf"} 4',
        ]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)

    def test_histogram_sum_and_count_match_json_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "H.", buckets=(10.0, math.inf))
        for value in (1.25, 2.5, 30.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert "h_sum 33.75\n" in text
        assert "h_count 3\n" in text
        snap = hist.snapshot_series()
        assert snap["count"] == 3
        assert snap["sum"] == 33.75

    def test_exposition_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.gauge("g", "G.").set(1)
        assert registry.render_prometheus().endswith("\n")
