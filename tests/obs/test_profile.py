"""Plan profiling: per-kernel rows, trace export, side-band invariant."""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models.registry import MODEL_NAMES, build_model
from repro.obs import KernelProfiler, configure_tracing, reset_tracing
from repro.quant.model import quantize_module
from repro.runtime.plan import compile_model
from repro.store import CampaignStore

ROW_KEYS = {
    "step",
    "kernel",
    "calls",
    "total_ms",
    "gather_ms",
    "gemm_ms",
    "epilogue_ms",
}


def _plan(name="lenet", batch=1):
    model = build_model(name, num_classes=10, scale=0.125, image_size=32, seed=0)
    return compile_model(model, (batch, 3, 32, 32))


class TestPlanProfile:
    @pytest.mark.parametrize("name", sorted(MODEL_NAMES))
    def test_every_registry_model_reports_phase_split(self, name):
        profile = _plan(name).profile(repeats=1, warmup=0)
        assert profile.forwards == 1
        assert profile.rows, name
        for row in profile.rows:
            assert set(row) == ROW_KEYS
            assert row["calls"] >= 1
            for key in ("total_ms", "gather_ms", "gemm_ms", "epilogue_ms"):
                assert float(row[key]) >= 0.0
        # The models are conv/linear stacks: some kernel must have hit
        # an instrumented GEMM, and the derived epilogue must be fed by
        # a real total.
        assert any(float(row["gemm_ms"]) > 0.0 for row in profile.rows)
        assert profile.total_ms > 0.0

    def test_residual_children_get_nested_labels(self):
        profile = _plan("resnet18").profile(repeats=1, warmup=0)
        steps = [str(row["step"]) for row in profile.rows]
        nested = [step for step in steps if ".main." in step]
        assert nested, steps
        # Nested child totals are subtracted from the parent's epilogue,
        # so the parent row stays a wrapper cost, not a double count.
        parent = nested[0].split(".", 1)[0]
        parent_row = next(r for r in profile.rows if str(r["step"]) == parent)
        child_total = sum(
            float(r["total_ms"])
            for r in profile.rows
            if str(r["step"]).startswith(f"{parent}.")
        )
        assert parent_row["epilogue_ms"] <= parent_row["total_ms"]
        assert child_total <= float(parent_row["total_ms"]) + 1.0

    def test_profile_validates_arguments(self):
        plan = _plan()
        with pytest.raises(ConfigurationError):
            plan.profile(repeats=0)
        with pytest.raises(ConfigurationError):
            plan.profile(warmup=-1)

    def test_profile_detaches_and_results_stay_bit_identical(self):
        plan = _plan()
        batch = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        batch = batch.astype(np.float32)
        before = plan(batch)
        profile = plan.profile(repeats=2, warmup=1)
        after = plan(batch)
        assert plan._profiler is None
        assert profile.forwards == 2
        np.testing.assert_array_equal(before, after)

    def test_compile_model_profile_flag_attaches_persistently(self):
        model = build_model(
            "lenet", num_classes=10, scale=0.125, image_size=32, seed=0
        )
        plan = compile_model(model, (1, 3, 32, 32), profile=True)
        assert plan._profiler is not None
        assert plan._profiler.forwards == 0  # the warm pass is untimed
        plan(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert plan._profiler.forwards == 1
        assert plan._profiler.result().rows

    def test_reattach_resets_accumulation(self):
        plan = _plan()
        profiler = plan.attach_profiler()
        plan(np.zeros((1, 3, 32, 32), dtype=np.float32))
        assert profiler.forwards == 1
        plan.attach_profiler(profiler)
        assert profiler.forwards == 0
        assert profiler.events == []
        labels = [row["step"] for row in profiler.rows()]
        assert labels == sorted(set(labels), key=labels.index)

    def test_table_lists_every_step(self):
        profile = _plan().profile(repeats=1, warmup=0)
        table = profile.table()
        for row in profile.rows:
            assert str(row["kernel"]) in table
        assert "ms/forward" in table

    def test_chrome_trace_schema_and_write(self, tmp_path):
        profile = _plan().profile(repeats=1, warmup=0)
        trace = profile.chrome_trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete
        assert all(e["cat"] == "plan" for e in complete)
        path = tmp_path / "kernels.json"
        count = profile.write_chrome_trace(str(path))
        assert count == len(profile.events)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) >= count

    def test_unknown_kernel_is_silently_ignored(self):
        profiler = KernelProfiler()
        profiler.attach([])
        profiler.step(object(), 0.0, 1.0)
        profiler.phase(object(), "gemm", 0.0, 1.0)
        assert profiler.rows() == []


class _ParamHealth:
    """Picklable accuracy proxy (deterministic in the fault pattern)."""

    def __init__(self, model):
        self.model = model

    def __call__(self) -> float:
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


def _journal_bytes(tmp_path, name):
    model = quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )
    campaign = FaultCampaign(
        FaultInjector(model), _ParamHealth(model), trials=4, seed=7
    )
    store_dir = str(tmp_path / name)
    with campaign, CampaignStore.for_campaign(store_dir, campaign) as store:
        campaign.run(BitFlipFaultModel.at_rate(5e-3), store=store)
    journal = (tmp_path / name / "trials.jsonl").read_bytes()
    # ``sec`` is wall-clock noise by design (TrialOutcome.seconds is a
    # non-identity field); every identity byte must match exactly.
    return re.sub(rb',"sec":[^,}]*\}', b"}", journal)


class TestSideBand:
    def test_tracing_never_changes_journaled_bytes(self, tmp_path):
        reset_tracing()
        try:
            plain = _journal_bytes(tmp_path, "plain")
            configure_tracing(True)
            traced = _journal_bytes(tmp_path, "traced")
        finally:
            reset_tracing()
        assert plain == traced
