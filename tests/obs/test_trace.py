"""Span tracer: null-span fast path, ring bound, Chrome-trace schema."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.obs import (
    chrome_trace,
    configure_tracing,
    export_chrome_trace,
    reset_tracing,
    span,
    trace_events,
    tracing_enabled,
)
from repro.obs.trace import _NULL_SPAN, _STATE


@pytest.fixture(autouse=True)
def _clean_tracer():
    reset_tracing()
    yield
    reset_tracing()


class TestSpan:
    def test_disabled_by_default_returns_shared_null_span(self):
        assert not tracing_enabled()
        assert span("a") is _NULL_SPAN
        assert span("b", key=1) is _NULL_SPAN
        with span("c"):
            pass
        assert trace_events() == []

    def test_enabled_records_name_attrs_and_thread(self):
        configure_tracing(True)
        with span("serve.request", endpoint="/predict"):
            pass
        (record,) = trace_events()
        assert record.name == "serve.request"
        assert dict(record.attrs) == {"endpoint": "/predict"}
        assert record.end >= record.start
        assert record.thread_name == threading.current_thread().name

    def test_record_survives_exceptions(self):
        configure_tracing(True)
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        assert [r.name for r in trace_events()] == ["boom"]

    def test_ring_buffer_is_bounded(self):
        configure_tracing(True, capacity=4)
        for index in range(10):
            with span(f"s{index}"):
                pass
        names = [r.name for r in trace_events()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            configure_tracing(True, capacity=0)

    def test_reset_disables_and_drops(self):
        configure_tracing(True)
        with span("x"):
            pass
        reset_tracing()
        assert not tracing_enabled()
        assert trace_events() == []

    def test_tracer_state_refuses_pickling(self):
        with pytest.raises(TypeError):
            pickle.dumps(_STATE)


class TestChromeTrace:
    def _trace(self):
        configure_tracing(True)
        with span("runtime.forward", steps=3):
            with span("serve.batch", size=2):
                pass
        return chrome_trace()

    def test_schema(self):
        trace = self._trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["name"] == "thread_name"
        assert {e["name"] for e in complete} == {
            "runtime.forward",
            "serve.batch",
        }
        for event in complete:
            assert event["cat"] == event["name"].split(".")[0]
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 0

    def test_timestamps_relative_to_earliest_span(self):
        trace = self._trace()
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0

    def test_json_serialisable_including_attr_coercion(self):
        configure_tracing(True)
        with span("x", obj=object(), flag=True):
            pass
        payload = json.dumps(chrome_trace())
        assert "traceEvents" in payload

    def test_export_writes_file_and_returns_count(self, tmp_path):
        configure_tracing(True)
        with span("a"):
            pass
        path = tmp_path / "trace.json"
        assert export_chrome_trace(str(path)) == 1
        loaded = json.loads(path.read_text())
        assert [e["name"] for e in loaded["traceEvents"] if e["ph"] == "X"] == [
            "a"
        ]
