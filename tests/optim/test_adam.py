"""Adam optimiser (the paper's post-training solver)."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import Adam


def _step(optimizer, param, grad):
    optimizer.zero_grad()
    param.grad = np.asarray(grad, dtype=np.float32)
    optimizer.step()


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """With bias correction, |Δp| of step 1 ≈ lr regardless of grad scale."""
        for grad_scale in (1e-3, 1.0, 1e3):
            param = Parameter(np.array([0.0], dtype=np.float32))
            optimizer = Adam([param], lr=0.1)
            _step(optimizer, param, [grad_scale])
            assert abs(param.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_step_direction_opposes_gradient(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.01)
        _step(optimizer, param, [5.0])
        assert param.data[0] < 1.0

    def test_converges_on_quadratic(self):
        param = Parameter(np.array([3.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            _step(optimizer, param, param.data.copy())
        assert abs(param.data[0]) < 1e-3

    def test_weight_decay(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.1, weight_decay=1.0)
        _step(optimizer, param, [0.0])
        assert param.data[0] < 1.0

    def test_invalid_betas_raise(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            Adam([param], betas=(1.0, 0.999))

    def test_invalid_eps_raises(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            Adam([param], eps=0.0)

    def test_state_dict_roundtrip(self):
        param = Parameter(np.array([5.0], dtype=np.float32))
        optimizer = Adam([param], lr=0.05)
        for _ in range(4):
            _step(optimizer, param, param.data.copy())
        state = optimizer.state_dict()

        param2 = Parameter(param.data.copy())
        restored = Adam([param2], lr=0.05)
        restored.load_state_dict(state)
        _step(optimizer, param, param.data.copy())
        _step(restored, param2, param2.data.copy())
        np.testing.assert_allclose(param.data, param2.data, rtol=1e-6)

    def test_multiple_params_independent_state(self):
        a = Parameter(np.array([1.0], dtype=np.float32))
        b = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = Adam([a, b], lr=0.1)
        optimizer.zero_grad()
        a.grad = np.array([1.0], dtype=np.float32)
        b.grad = np.array([-1.0], dtype=np.float32)
        optimizer.step()
        assert a.data[0] < 1.0 < b.data[0]
