"""Learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import SGD, CosineAnnealingLR, MultiStepLR, StepLR


def _optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        optimizer = _optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01, 0.001])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)


class TestMultiStepLR:
    def test_milestones(self):
        optimizer = _optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            scheduler.step()
            lrs.append(optimizer.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])


class TestCosine:
    def test_endpoints(self):
        optimizer = _optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
        assert scheduler.compute_lr(0) == pytest.approx(1.0)
        assert scheduler.compute_lr(10) == pytest.approx(0.1)

    def test_midpoint(self):
        scheduler = CosineAnnealingLR(_optimizer(), t_max=10)
        assert scheduler.compute_lr(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        scheduler = CosineAnnealingLR(_optimizer(), t_max=8)
        lrs = [scheduler.compute_lr(epoch) for epoch in range(9)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_t_max(self):
        scheduler = CosineAnnealingLR(_optimizer(), t_max=4, eta_min=0.2)
        assert scheduler.compute_lr(100) == pytest.approx(0.2)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), t_max=0)

    def test_current_lr_tracks_optimizer(self):
        optimizer = _optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=4)
        scheduler.step()
        assert scheduler.current_lr == optimizer.lr
        assert optimizer.lr == pytest.approx((1 + math.cos(math.pi / 4)) / 2)
