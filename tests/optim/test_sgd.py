"""SGD optimiser."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigurationError
from repro.nn import Parameter
from repro.optim import SGD


def _quadratic_step(optimizer, param, target=0.0):
    """One gradient step on f(p) = 0.5 (p - target)^2."""
    optimizer.zero_grad()
    param.grad = (param.data - target).astype(np.float32)
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.5)
        for _ in range(50):
            _quadratic_step(optimizer, param)
        assert abs(param.data[0]) < 1e-6

    def test_single_step_formula(self):
        param = Parameter(np.array([2.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        param.grad = np.array([4.0], dtype=np.float32)
        optimizer.step()
        assert param.data[0] == pytest.approx(2.0 - 0.1 * 4.0)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([10.0], dtype=np.float32))
        heavy = Parameter(np.array([10.0], dtype=np.float32))
        opt_plain = SGD([plain], lr=0.01)
        opt_heavy = SGD([heavy], lr=0.01, momentum=0.9)
        for _ in range(30):
            _quadratic_step(opt_plain, plain)
            _quadratic_step(opt_heavy, heavy)
        assert abs(heavy.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(1, dtype=np.float32)
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_nesterov_requires_momentum(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)

    def test_skips_none_grads(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no grad set
        assert param.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_duplicate_params_raises(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ConfigurationError):
            SGD([param, param], lr=0.1)

    def test_non_positive_lr_raises(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ConfigurationError):
            SGD([param], lr=0.0)

    def test_state_dict_roundtrip(self):
        param = Parameter(np.array([5.0], dtype=np.float32))
        optimizer = SGD([param], lr=0.1, momentum=0.9)
        for _ in range(3):
            _quadratic_step(optimizer, param)
        state = optimizer.state_dict()

        param2 = Parameter(param.data.copy())
        restored = SGD([param2], lr=0.1, momentum=0.9)
        restored.load_state_dict(state)
        _quadratic_step(optimizer, param)
        _quadratic_step(restored, param2)
        np.testing.assert_allclose(param.data, param2.data, rtol=1e-6)
