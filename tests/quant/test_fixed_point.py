"""Q15.16 fixed-point codec: exactness, saturation, bit flips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quant import (
    FixedPointFormat,
    Q7_8,
    Q15_16,
    decode,
    encode,
    flip_bits,
    quantize,
)


class TestFormat:
    def test_q15_16_layout(self):
        assert Q15_16.total_bits == 32
        assert Q15_16.scale == 65536
        assert Q15_16.max_value == pytest.approx(32768.0 - 2**-16)
        assert Q15_16.min_value == -32768.0
        assert Q15_16.resolution == 2**-16
        assert Q15_16.bytes_per_word == 4.0
        assert str(Q15_16) == "Q15.16"

    def test_q7_8_layout(self):
        assert Q7_8.total_bits == 16
        assert Q7_8.max_value == pytest.approx(128.0 - 2**-8)

    def test_invalid_formats(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(-1, 16)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(40, 40)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(0, 0)


class TestCodec:
    def test_known_encodings(self):
        assert encode(np.array([1.0]))[0] == 0x00010000
        assert encode(np.array([0.5]))[0] == 0x00008000
        assert encode(np.array([-1.0]))[0] == -0x00010000
        assert encode(np.array([0.0]))[0] == 0

    def test_roundtrip_exact_for_representable(self):
        values = np.array([0.25, -3.5, 100.0625], dtype=np.float64)
        np.testing.assert_array_equal(decode(encode(values)), values.astype(np.float32))

    def test_saturation(self):
        huge = np.array([1e9, -1e9])
        words = encode(huge)
        assert words[0] == Q15_16.max_raw
        assert words[1] == Q15_16.min_raw

    def test_quantize_idempotent(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(100).astype(np.float32) * 10
        once = quantize(values)
        twice = quantize(once)
        np.testing.assert_array_equal(once, twice)

    @given(st.floats(min_value=-30000, max_value=30000, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_error_within_half_ulp(self, value):
        decoded = float(decode(encode(np.array([value])))[0])
        # decode() returns float32, whose own representation error
        # (~|v|·2⁻²⁴) dominates the fixed-point half-ulp for large values.
        float32_ulp = abs(value) * 2.0**-23
        assert abs(decoded - value) <= Q15_16.resolution / 2 + float32_ulp + 1e-9

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_monotone(self, values):
        array = np.sort(np.asarray(values))
        quantized = quantize(array)
        assert (np.diff(quantized) >= 0).all()


class TestBitFlips:
    def test_lsb_flip_changes_by_resolution(self):
        words = encode(np.array([1.0]))
        flipped = flip_bits(words, np.array([0]), np.array([0]))
        assert decode(flipped)[0] == pytest.approx(1.0 + Q15_16.resolution)

    def test_sign_bit_flip_is_catastrophic(self):
        words = encode(np.array([1.0]))
        flipped = flip_bits(words, np.array([0]), np.array([31]))
        assert decode(flipped)[0] == pytest.approx(1.0 - 32768.0)

    def test_high_integer_bit_flip(self):
        words = encode(np.array([0.0]))
        flipped = flip_bits(words, np.array([0]), np.array([30]))
        assert decode(flipped)[0] == pytest.approx(16384.0)

    def test_input_not_mutated(self):
        words = encode(np.array([2.0, 3.0]))
        original = words.copy()
        flip_bits(words, np.array([1]), np.array([5]))
        np.testing.assert_array_equal(words, original)

    def test_empty_flip_is_copy(self):
        words = encode(np.array([2.0]))
        out = flip_bits(words, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(out, words)
        assert out is not words

    def test_position_out_of_range(self):
        words = encode(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            flip_bits(words, np.array([5]), np.array([0]))

    def test_bit_out_of_range(self):
        words = encode(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            flip_bits(words, np.array([0]), np.array([32]))

    def test_misaligned_arrays(self):
        words = encode(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            flip_bits(words, np.array([0, 0]), np.array([1]))

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 30),
        st.integers(0, 31),
    )
    @settings(max_examples=100, deadline=None)
    def test_double_flip_is_identity(self, seed, size, bit):
        """XOR involution: the injector's restore path depends on this."""
        rng = np.random.default_rng(seed)
        words = encode(rng.uniform(-1000, 1000, size))
        position = np.array([int(rng.integers(0, size))])
        bits = np.array([bit])
        once = flip_bits(words, position, bits)
        twice = flip_bits(once, position, bits)
        np.testing.assert_array_equal(twice, words)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_flip_changes_exactly_one_word(self, seed):
        rng = np.random.default_rng(seed)
        words = encode(rng.uniform(-10, 10, 8))
        position = int(rng.integers(0, 8))
        bit = int(rng.integers(0, 32))
        flipped = flip_bits(words, np.array([position]), np.array([bit]))
        differs = flipped != words
        assert differs.sum() == 1
        assert differs[position]

    def test_flips_in_16_bit_format(self):
        words = encode(np.array([1.0]), Q7_8)
        flipped = flip_bits(words, np.array([0]), np.array([15]), Q7_8)
        assert decode(flipped, Q7_8)[0] == pytest.approx(1.0 - 128.0)

    def test_multidimensional_words(self):
        words = encode(np.ones((2, 3)))
        flipped = flip_bits(words, np.array([4]), np.array([0]))
        assert flipped.shape == (2, 3)
        assert flipped[1, 1] != words[1, 1]
