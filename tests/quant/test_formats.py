"""Format catalog and the Qi.f parser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.quant import (
    FORMATS,
    FixedPointFormat,
    Q1_6,
    Q3_4,
    Q15_16,
    parse_format,
    quantize,
)


class TestCatalog:
    def test_catalog_widths(self):
        assert Q3_4.total_bits == 8
        assert Q1_6.total_bits == 8
        assert FORMATS["q7.8"].total_bits == 16
        assert FORMATS["q15.16"].total_bits == 32

    def test_catalog_keys_match_formats(self):
        for key, fmt in FORMATS.items():
            assert key == f"q{fmt.integer_bits}.{fmt.fraction_bits}"

    def test_narrow_format_range(self):
        assert Q3_4.max_value == pytest.approx(8.0 - 1 / 16)
        assert Q3_4.min_value == -8.0

    def test_narrow_quantisation_coarser(self):
        values = np.array([0.3, -0.7, 1.234], dtype=np.float32)
        err_narrow = np.abs(quantize(values, Q3_4) - values).max()
        err_wide = np.abs(quantize(values, Q15_16) - values).max()
        assert err_wide < err_narrow <= Q3_4.resolution


class TestParseFormat:
    def test_named_formats_are_singletons(self):
        assert parse_format("Q15.16") is Q15_16
        assert parse_format("q3.4") is Q3_4

    def test_whitespace_and_case(self):
        assert parse_format("  Q7.8 ") is FORMATS["q7.8"]

    def test_custom_format(self):
        fmt = parse_format("Q5.10")
        assert isinstance(fmt, FixedPointFormat)
        assert (fmt.integer_bits, fmt.fraction_bits) == (5, 10)

    @pytest.mark.parametrize("bad", ["", "15.16", "Qx.y", "Q15", "Q-1.16", "float32"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_format(bad)

    def test_rejects_too_wide(self):
        with pytest.raises(ConfigurationError):
            parse_format("Q40.40")

    @given(
        integer_bits=st.integers(min_value=0, max_value=20),
        fraction_bits=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_spec(self, integer_bits, fraction_bits):
        fmt = parse_format(f"Q{integer_bits}.{fraction_bits}")
        assert fmt.integer_bits == integer_bits
        assert fmt.fraction_bits == fraction_bits
        assert parse_format(str(fmt)) == fmt
