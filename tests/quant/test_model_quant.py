"""Model-level quantisation and memory accounting."""

import numpy as np
import pytest

from repro import nn
from repro.quant import Q7_8, Q15_16, model_memory_bytes, quantize_module
from repro.quant.fixed_point import decode, encode


def _model():
    return nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))


class TestQuantizeModule:
    def test_parameters_become_representable(self):
        model = quantize_module(_model())
        for _, param in model.named_parameters():
            roundtrip = decode(encode(param.data))
            np.testing.assert_array_equal(roundtrip, param.data)

    def test_idempotent(self):
        model = quantize_module(_model())
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        quantize_module(model)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_small_perturbation(self):
        model = _model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        quantize_module(model)
        for name, param in model.named_parameters():
            assert np.abs(param.data - before[name]).max() <= Q15_16.resolution

    def test_returns_module(self):
        model = _model()
        assert quantize_module(model) is model


class TestMemoryAccounting:
    def test_bytes_q15_16(self):
        model = _model()
        words = model.num_parameters()
        assert model_memory_bytes(model) == words * 4

    def test_bytes_q7_8_half(self):
        model = _model()
        assert model_memory_bytes(model, Q7_8) == model.num_parameters() * 2

    def test_grows_with_bound_parameters(self):
        from repro.core import FitReLU

        model = _model()
        base = model_memory_bytes(model)
        model[1] = FitReLU(np.ones(8, dtype=np.float32))
        assert model_memory_bytes(model) == base + 8 * 4
