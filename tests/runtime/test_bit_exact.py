"""Bit-exactness suite: compiled plans vs the eval-mode module forward.

The runtime's core contract is *exact* float32 equality — same bits,
not just allclose — between ``InferencePlan`` logits and the module
path, for every registry architecture and every bounded-activation
class, clean and under injected faults.  Exactness is what makes
``runtime=True`` a pure speed knob for campaigns: accuracies, SDC
counts, and every downstream statistic are unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.core.bounded_relu import BoundedReLU, FitReLUNaive, GBReLU
from repro.core.bounded_tanh import BoundedTanh
from repro.core.fitrelu import FitReLU
from repro.core.surgery import find_activation_sites
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator, forward_logits
from repro.fault.campaign import FaultCampaign
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.models.registry import MODEL_NAMES, build_model
from repro.quant import quantize_module
from repro.runtime import compile_model


def _random_batch(rng, n, size):
    return rng.standard_normal((n, 3, size, size)).astype(np.float32)


def _module_logits(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


# ----------------------------------------------------------------------
# Every registry architecture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", MODEL_NAMES)
def test_registry_model_bit_exact(name):
    rng = np.random.default_rng(7)
    model = build_model(name, num_classes=10, scale=0.125, image_size=32, seed=0)
    x = _random_batch(rng, 3, 32)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)


def test_quantized_model_bit_exact():
    rng = np.random.default_rng(8)
    model = quantize_module(
        build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    )
    x = _random_batch(rng, 5, 16)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), _module_logits(model, x))


# ----------------------------------------------------------------------
# Every bounded-activation class, fused and standalone
# ----------------------------------------------------------------------
# Each factory receives the conv activation shape (C, H, W) and the
# classifier feature width, returning the two activation instances.
_ACTIVATION_CASES = {
    "gbrelu-zero": lambda shape, feats: (GBReLU(1.5, "zero"), GBReLU(2.0, "zero")),
    "gbrelu-saturate": lambda shape, feats: (
        GBReLU(1.5, "saturate"),
        GBReLU(2.0, "saturate"),
    ),
    "fitrelu-naive-neuron": lambda shape, feats: (
        FitReLUNaive(np.linspace(0.5, 2.5, int(np.prod(shape))).reshape(shape)),
        FitReLUNaive(np.linspace(0.5, 2.5, feats)),
    ),
    "bounded-relu-channel-sat": lambda shape, feats: (
        BoundedReLU(
            np.linspace(1.0, 2.0, shape[0]).reshape(shape[0], 1, 1), "saturate"
        ),
        BoundedReLU(np.float32(1.75), "saturate"),
    ),
    "bounded-tanh": lambda shape, feats: (
        BoundedTanh(np.linspace(1.0, 3.0, shape[0]).reshape(shape[0], 1, 1)),
        BoundedTanh(2.5),
    ),
    "fitrelu-relative": lambda shape, feats: (
        FitReLU(np.linspace(0.5, 2.5, int(np.prod(shape))).reshape(shape)),
        FitReLU(np.linspace(0.5, 2.5, feats)),
    ),
    "fitrelu-absolute": lambda shape, feats: (
        FitReLU(1.25, slope_mode="absolute"),
        FitReLU(0.75, slope_mode="absolute"),
    ),
    "relu": lambda shape, feats: (nn.ReLU(), nn.ReLU()),
    "leaky-relu": lambda shape, feats: (nn.LeakyReLU(0.05), nn.LeakyReLU(0.2)),
    "tanh": lambda shape, feats: (nn.Tanh(), nn.Tanh()),
    "sigmoid": lambda shape, feats: (nn.Sigmoid(), nn.Sigmoid()),
    "softmax": lambda shape, feats: (nn.Softmax(axis=1), nn.Softmax(axis=-1)),
}


@pytest.mark.parametrize("case", sorted(_ACTIVATION_CASES))
def test_activation_class_bit_exact(case):
    rng = np.random.default_rng(11)
    conv_act, head_act = _ACTIVATION_CASES[case]((6, 16, 16), 24)
    model = nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=0),
        conv_act,
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 8 * 8, 24, rng=1),
        head_act,
        nn.Linear(24, 10, rng=2),
    )
    x = _random_batch(rng, 4, 16)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)


def test_batchnorm_fusion_bit_exact():
    """Conv+BN2d and Linear+BN1d epilogues (plus a standalone BN step)."""
    rng = np.random.default_rng(12)
    model = nn.Sequential(
        nn.BatchNorm2d(3),  # standalone BN kernel (no preceding GEMM)
        nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=0),
        nn.BatchNorm2d(8),
        nn.ReLU(),
        nn.AvgPool2d(2),
        nn.Flatten(),
        nn.Linear(8 * 8 * 8, 16, rng=1),
        nn.BatchNorm1d(16),
        nn.Tanh(),
        nn.Linear(16, 10, rng=2),
    )
    # Give the running stats non-trivial values via a few training steps.
    for _ in range(3):
        model(Tensor(_random_batch(rng, 8, 16)))
    x = _random_batch(rng, 4, 16)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)


def test_protected_lenet_surgery_bit_exact():
    """A surgery-protected model (the deployment shape) stays exact."""
    rng = np.random.default_rng(13)
    model = build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    for path in find_activation_sites(model):
        model.set_submodule(path, FitReLU(np.float32(1.5)))
    x = _random_batch(rng, 4, 16)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)


# ----------------------------------------------------------------------
# Fault visibility
# ----------------------------------------------------------------------
def test_flipped_bit_changes_runtime_identically():
    """A flipped weight bit perturbs plan and module outputs the same way."""
    rng = np.random.default_rng(21)
    model = quantize_module(
        build_model("resnet18", num_classes=10, scale=0.125, image_size=16, seed=0)
    )
    x = _random_batch(rng, 4, 16)
    plan = compile_model(model, x.shape)
    clean = plan(x)
    np.testing.assert_array_equal(clean, forward_logits(model, x))

    injector = FaultInjector(model)
    sites = injector.sample(BitFlipFaultModel(n_flips=48), rng=3)
    with injector.inject(sites):
        faulty_module = forward_logits(model, x)
        faulty_plan = plan(x)
    np.testing.assert_array_equal(faulty_plan, faulty_module)
    assert not np.array_equal(faulty_plan, clean), "flips must perturb logits"
    # Restore must be visible in the very next plan forward.
    np.testing.assert_array_equal(plan(x), clean)


def test_campaign_sdc_counts_identical_with_runtime():
    """Accuracy/flip streams match exactly with and without runtime=True."""

    def run(runtime: bool):
        model = quantize_module(
            build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
        )
        dataset = SyntheticImageDataset(
            num_classes=10, num_samples=256, image_size=16, seed=0, split="test"
        )
        evaluator = Evaluator(
            DataLoader(
                dataset, batch_size=100, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
            ),
            runtime=runtime,
        )
        campaign = FaultCampaign(
            FaultInjector(model), evaluator.bind(model), trials=4, seed=0
        )
        return campaign.run(BitFlipFaultModel.at_rate(1e-4))

    module_result = run(runtime=False)
    runtime_result = run(runtime=True)
    np.testing.assert_array_equal(
        module_result.accuracies, runtime_result.accuracies
    )
    np.testing.assert_array_equal(
        module_result.flip_counts, runtime_result.flip_counts
    )
