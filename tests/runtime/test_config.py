"""RuntimeConfig: one config object, deprecated kwargs as strict aliases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import RuntimeConfig, compile_model, resolve_runtime_config


class TestRuntimeConfig:
    def test_defaults_are_the_serial_determinism_contract(self):
        config = RuntimeConfig()
        assert config.enabled is False
        assert config.gemm_workers is None
        assert config.replicas is None
        assert config.profile is False

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="gemm_workers"):
            RuntimeConfig(gemm_workers="fastest")
        with pytest.raises(ConfigurationError, match="gemm_workers"):
            RuntimeConfig(gemm_workers=-1)
        with pytest.raises(ConfigurationError, match="replicas"):
            RuntimeConfig(replicas=0)
        RuntimeConfig(gemm_workers="auto", replicas=2)  # valid extremes

    def test_with_enabled_returns_a_copy(self):
        base = RuntimeConfig(gemm_workers=2)
        flipped = base.with_enabled()
        assert flipped.enabled is True
        assert flipped.gemm_workers == 2
        assert base.enabled is False  # frozen original untouched


class TestResolveRuntimeConfig:
    def test_config_passes_through(self):
        config = RuntimeConfig(enabled=True, gemm_workers=2)
        assert resolve_runtime_config(config, "Owner") is config

    def test_no_arguments_yields_defaults_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = resolve_runtime_config(
                None, "Owner", enabled=False, gemm_workers=None
            )
        assert config == RuntimeConfig()

    def test_alias_alone_warns_and_folds_in(self):
        with pytest.warns(DeprecationWarning, match="Owner.*deprecated"):
            config = resolve_runtime_config(
                None, "Owner", enabled=True, gemm_workers="auto"
            )
        assert config.enabled is True
        assert config.gemm_workers == "auto"

    def test_alias_plus_config_is_ambiguous(self):
        with pytest.raises(ConfigurationError, match="both config="):
            resolve_runtime_config(
                RuntimeConfig(), "Owner", enabled=True
            )


class TestConsumersAcceptConfig:
    def test_compile_model_via_config(self, small_model):
        plan = compile_model(
            small_model,
            (1, 3, 8, 8),
            config=RuntimeConfig(gemm_workers=2, profile=True),
        )
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        assert plan(x).shape[0] == 2
        assert plan._profiler is not None

    def test_compile_model_rejects_mixed_styles(self, small_model):
        with pytest.raises(ConfigurationError, match="both config="):
            compile_model(
                small_model,
                (1, 3, 8, 8),
                gemm_workers=2,
                config=RuntimeConfig(),
            )

    def test_compile_model_replicas_via_config(self, small_model):
        plan = compile_model(
            small_model, (1, 3, 8, 8), config=RuntimeConfig(replicas=2)
        )
        from repro.runtime import ReplicaPlan

        assert isinstance(plan, ReplicaPlan)

    def test_evaluator_via_config(self, test_loader):
        from repro.eval.evaluator import Evaluator

        evaluator = Evaluator(
            test_loader, max_batches=1, config=RuntimeConfig(enabled=True)
        )
        assert evaluator.runtime is True
        assert evaluator.config.enabled is True

    def test_evaluator_legacy_kwarg_warns(self, test_loader):
        from repro.eval.evaluator import Evaluator

        with pytest.warns(DeprecationWarning, match="Evaluator"):
            evaluator = Evaluator(test_loader, max_batches=1, runtime=True)
        assert evaluator.config.enabled is True

    def test_model_registry_via_config(self):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(capacity=1, config=RuntimeConfig(enabled=True))
        assert registry.runtime is True

    def test_model_registry_legacy_kwarg_warns(self):
        from repro.serve import ModelRegistry

        with pytest.warns(DeprecationWarning, match="ModelRegistry"):
            registry = ModelRegistry(capacity=1, runtime=True)
        assert registry.runtime is True


@pytest.fixture()
def small_model():
    from repro.models.lenet import build_lenet

    return build_lenet(num_classes=4, scale=0.25, seed=0, image_size=8)
