"""Regression tests: inference must not mutate the shared training flag.

The old ``forward_logits``/``Evaluator.accuracy`` flipped the model's
``training`` flag and restored it afterwards.  Under ``repro.serve``
several threads (batcher workers, the chaos engine, an in-process
campaign) share one model, so that write/restore dance could race: one
thread's restore landed mid-forward of another, running BatchNorm in
training mode — corrupting running statistics and the served logits.
The fix is a *thread-local* eval override (:func:`repro.nn.eval_mode`):
these tests pin the new contract.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import nn
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator, forward_logits
from repro.nn.module import eval_mode, is_eval_forced


def _bn_model():
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=0),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 10, rng=1),
    )
    # One train-mode batch gives the running stats non-trivial values,
    # so train- vs eval-mode BN forwards genuinely differ.
    model(_random_batch(8))
    return model


def _random_batch(n):
    return np.random.default_rng(3).standard_normal((n, 3, 16, 16)).astype(
        np.float32
    )


def test_eval_mode_is_thread_local():
    model = nn.Sequential(nn.BatchNorm1d(4))
    model.train(True)
    seen_by_other_thread: list[bool] = []

    with eval_mode():
        assert is_eval_forced()
        assert model.training is False  # this thread sees eval semantics
        probe = threading.Thread(
            target=lambda: seen_by_other_thread.append(model.training)
        )
        probe.start()
        probe.join()
    assert model.training is True  # stored flag was never written
    assert seen_by_other_thread == [True]  # other threads unaffected


def test_eval_mode_nests():
    model = nn.Sequential(nn.BatchNorm1d(2))
    with eval_mode():
        with eval_mode():
            assert model.training is False
        assert model.training is False
    assert model.training is True


def test_forward_logits_does_not_mutate_shared_state():
    model = _bn_model()
    model.train(True)
    bn = model[1]
    stats_before = (bn.running_mean.copy(), bn.running_var.copy())
    tracked_before = int(bn.num_batches_tracked)

    x = _random_batch(4)
    logits = forward_logits(model, x)

    assert model.training is True  # flag never flipped
    for module in model.modules():
        assert module.__dict__.get("_training", True) is True
    # Eval-mode BN: running stats untouched by the inference pass.
    np.testing.assert_array_equal(bn.running_mean, stats_before[0])
    np.testing.assert_array_equal(bn.running_var, stats_before[1])
    assert int(bn.num_batches_tracked) == tracked_before
    # And the output is the eval-mode output.
    model.eval()
    expected = forward_logits(model, x)
    model.train(True)
    np.testing.assert_array_equal(logits, expected)


def test_forward_logits_during_concurrent_flag_writes():
    """The serving race, made deterministic.

    A sampler module observes what *another thread* reads from the
    shared flag while this thread's inference forward is in flight.
    Before the fix, forward_logits wrote ``model.eval()`` into shared
    state, so the observer saw False; now the override is thread-local
    and the observer must always see the stored value (True).
    """
    observed: list[bool] = []
    model_holder: list[nn.Module] = []

    class Sampler(nn.Module):
        def forward(self, x):
            result: list[bool] = []
            probe = threading.Thread(
                target=lambda: result.append(model_holder[0].training)
            )
            probe.start()
            probe.join()
            observed.append(result[0])
            return x

    model = nn.Sequential(
        Sampler(),
        nn.BatchNorm2d(3),
        nn.Flatten(),
        nn.Linear(3 * 16 * 16, 4, rng=0),
    )
    model_holder.append(model)
    model.train(True)
    forward_logits(model, _random_batch(2))
    assert observed == [True]


def test_concurrent_forward_logits_all_eval_and_stable():
    model = _bn_model()
    model.train(True)
    bn = model[1]
    stats_before = bn.running_mean.copy()
    x = _random_batch(4)
    model.eval()
    expected = forward_logits(model, x)
    model.train(True)

    results: list[np.ndarray] = []
    errors: list[BaseException] = []

    def worker() -> None:
        try:
            for _ in range(10):
                results.append(forward_logits(model, x))
        except BaseException as error:  # noqa: BLE001 - surface below
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for result in results:
        np.testing.assert_array_equal(result, expected)
    np.testing.assert_array_equal(bn.running_mean, stats_before)
    assert model.training is True


def test_evaluator_accuracy_does_not_mutate_flag():
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=64, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=32, transform=Normalize(SYNTH_MEAN, SYNTH_STD))
    )
    model = _bn_model()
    model.train(True)
    tracked_before = int(model[1].num_batches_tracked)
    evaluator.accuracy(model)
    assert model.training is True
    assert int(model[1].num_batches_tracked) == tracked_before
