"""Native compiled support for transient activation-fault sites.

``repro.fault.activation`` wraps activation modules in ``_FaultedSite``
wrappers.  The compiler recognises them: the wrapped activation fuses
into the preceding GEMM epilogue as usual and a ``FaultStepKernel``
replays the encode/flip/decode surgery with the layer's live random
stream — so protected-model campaigns keep the compiled speedup at
instrumented sites *and* stay bit-identical to the module path, clean
and armed.  (Before this, compiling an instrumented ResNet crashed
outright: the structural block compiler handed the wrapper to
``apply_activation``.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator, forward_logits
from repro.fault.activation import (
    ActivationFaultCampaign,
    ActivationFaultInjector,
    ActivationFaultModel,
)
from repro.models.registry import build_model
from repro.runtime import compile_model
from repro.runtime.kernels import FallbackKernel, FaultStepKernel

FAULTS = ActivationFaultModel.exact(3)


def _build(name: str, size: int = 16):
    model = build_model(
        name, num_classes=10, scale=0.125, image_size=size, seed=0
    )
    model.eval()
    return model


def _batch(size: int = 16, n: int = 4):
    return (
        np.random.default_rng(0).standard_normal((n, 3, size, size)).astype(np.float32)
    )


@pytest.mark.parametrize(
    "name,size",
    [("lenet", 16), ("resnet18", 16), ("vgg11", 32), ("mobilenet", 32)],
)
def test_instrumented_model_compiles_natively_and_matches(name, size):
    """Clean pass-through, armed equality, counters, disarm restore."""
    model = _build(name, size)
    x = _batch(size)
    clean = forward_logits(model, x)
    injector = ActivationFaultInjector(model)
    plan = compile_model(model, x.shape)  # crashed for resnet18 before
    assert "fault-site" in plan.describe()
    assert not any(isinstance(step, FallbackKernel) for step in plan.steps)
    # Disarmed sites are pure pass-throughs.
    np.testing.assert_array_equal(plan(x), clean)

    with injector.active(FAULTS, seed=5):
        armed_plan = plan(x)
        plan_flips = injector.flips_injected
    with injector.active(FAULTS, seed=5):
        armed_module = forward_logits(model, x)
        module_flips = injector.flips_injected
    np.testing.assert_array_equal(armed_plan, armed_module)
    assert plan_flips == module_flips > 0
    assert not np.array_equal(armed_plan, clean), "faults must perturb logits"
    # Disarming restores the clean stream immediately.
    np.testing.assert_array_equal(plan(x), clean)


def test_fused_epilogue_survives_wrapping():
    """Wrapped activations still fuse into the conv/linear epilogues.

    The whole point of the native kernel: the plan should contain no
    standalone activation steps for wrapped ReLUs, only fused GEMM
    kernels followed by fault steps.
    """
    model = _build("lenet")
    ActivationFaultInjector(model)
    plan = compile_model(model, (2, 3, 16, 16))
    description = plan.describe()
    assert "ReLU" in description  # fused into conv/linear lines
    assert description.count("fault-site") == len(
        [s for s in plan.steps if isinstance(s, FaultStepKernel)]
    )
    assert any(isinstance(step, FaultStepKernel) for step in plan.steps)


def test_plan_compiled_before_instrumentation_tracks_surgery():
    """Structure changes rebuild the kernel program automatically."""
    model = _build("resnet18")
    x = _batch()
    plan = compile_model(model, x.shape)
    clean = plan(x)

    injector = ActivationFaultInjector(model)
    with injector.active(FAULTS, seed=9):
        armed_plan = plan(x)  # plan must notice the new wrappers
    with injector.active(FAULTS, seed=9):
        armed_module = forward_logits(model, x)
    np.testing.assert_array_equal(armed_plan, armed_module)
    assert not np.array_equal(armed_plan, clean)

    removed = injector.remove()
    assert removed > 0
    np.testing.assert_array_equal(plan(x), clean)


def test_warmup_does_not_consume_fault_streams():
    """Compiling while armed must not advance the layers' RNG streams.

    This is exactly what happens in a campaign with ``runtime=True``:
    the evaluator compiles its plan lazily inside the first armed
    trial.  The warm-up forward must leave streams and counters
    untouched or plan and module trials diverge.
    """
    model = _build("lenet")
    x = _batch()
    injector = ActivationFaultInjector(model)
    with injector.active(FAULTS, seed=11):
        plan = compile_model(model, x.shape)  # warm pass runs armed
        assert injector.flips_injected == 0, "warm-up must not inject"
        armed_plan = plan(x)
    with injector.active(FAULTS, seed=11):
        armed_module = forward_logits(model, x)
    np.testing.assert_array_equal(armed_plan, armed_module)


def test_activation_campaign_identical_with_runtime():
    """End to end: the activation-fault campaign's accuracy stream is
    bit-identical through the module path and the compiled runtime."""

    def run(runtime: bool):
        model = _build("lenet")
        dataset = SyntheticImageDataset(
            num_classes=10, num_samples=192, image_size=16, seed=0, split="test"
        )
        evaluator = Evaluator(
            DataLoader(
                dataset, batch_size=64, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
            ),
            runtime=runtime,
        )
        injector = ActivationFaultInjector(model)
        campaign = ActivationFaultCampaign(
            injector, evaluator.bind(model), trials=3, seed=0
        )
        return campaign.run(ActivationFaultModel.at_rate(1e-6))

    module_result = run(runtime=False)
    runtime_result = run(runtime=True)
    np.testing.assert_array_equal(
        module_result.accuracies, runtime_result.accuracies
    )
    np.testing.assert_array_equal(
        module_result.flip_counts, runtime_result.flip_counts
    )
