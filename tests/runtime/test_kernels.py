"""Tiered conv kernels: dispatch, per-tier bit-exactness, threaded GEMM.

The compiler picks one execution tier per conv layer from its static
geometry (direct 1x1, blocked K-major im2col, grouped einsum); every
tier — and the optional row-partitioned threaded GEMM on top — must
produce float32 logits bit-identical to the eval-mode module forward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd.grad_mode import no_grad
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.errors import ConfigurationError
from repro.eval.evaluator import Evaluator
from repro.fault.campaign import FaultCampaign
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.models.registry import build_model
from repro.quant import quantize_module
from repro.runtime import compile_model, resolve_gemm_workers
from repro.runtime import kernels as kernels_module
from repro.runtime.kernels import ConvKernel


def _module_logits(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


def _conv_kernels(plan):
    found = []

    def walk(steps):
        for step in steps:
            if isinstance(step, ConvKernel):
                found.append(step)
            main = getattr(step, "main", None)
            if main is not None:
                walk(main)
                walk(step.down or [])

    walk(plan.steps)
    return found


# ----------------------------------------------------------------------
# Tier dispatch (decided per layer at plan build time)
# ----------------------------------------------------------------------
def test_resnet_downsamples_use_direct_1x1_tier():
    model = build_model("resnet18", num_classes=10, scale=0.125, image_size=32, seed=0)
    plan = compile_model(model, (2, 3, 32, 32))
    tiers = {kernel.tier for kernel in _conv_kernels(plan)}
    assert tiers == {"direct1x1", "im2col"}
    assert "direct1x1" in plan.describe()


def test_mobilenet_depthwise_uses_grouped_tier_and_pointwise_direct():
    model = build_model(
        "mobilenet", num_classes=10, scale=0.125, image_size=32, seed=0
    )
    plan = compile_model(model, (2, 3, 32, 32))
    tiers = {kernel.tier for kernel in _conv_kernels(plan)}
    assert "grouped" in tiers  # depthwise stages
    assert "direct1x1" in tiers  # pointwise stages skip im2col entirely


def test_padded_1x1_conv_stays_on_im2col_tier():
    """Padding makes a 1x1 conv read positions the direct tier skips."""
    model = nn.Sequential(nn.Conv2d(3, 4, 1, padding=1, rng=0))
    plan = compile_model(model, (2, 3, 8, 8))
    (kernel,) = _conv_kernels(plan)
    assert kernel.tier == "im2col"
    x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)).astype(np.float32)
    np.testing.assert_array_equal(plan(x), _module_logits(model, x))


# ----------------------------------------------------------------------
# Per-tier bit-exactness over awkward geometries
# ----------------------------------------------------------------------
_GEOMETRIES = {
    "conv3x3-pad": dict(kernel_size=3, padding=1),
    "conv3x3-stride2": dict(kernel_size=3, stride=2, padding=1),
    "conv5x5-pad2": dict(kernel_size=5, padding=2),
    "conv1x1": dict(kernel_size=1),
    "conv1x1-stride2": dict(kernel_size=1, stride=2),
    "conv4x2-asym": dict(kernel_size=(4, 2), padding=(1, 0)),
    "conv3x3-nopad": dict(kernel_size=3),
}


@pytest.mark.parametrize("case", sorted(_GEOMETRIES))
@pytest.mark.parametrize("batch", [1, 5])
def test_conv_geometry_bit_exact(case, batch):
    rng = np.random.default_rng(17)
    model = nn.Sequential(
        nn.Conv2d(6, 8, rng=0, **_GEOMETRIES[case]),
        nn.ReLU(),
        nn.Flatten(),
    )
    x = rng.standard_normal((batch, 6, 17, 17)).astype(np.float32)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)


def test_grouped_conv_bit_exact():
    rng = np.random.default_rng(18)
    model = nn.Sequential(
        nn.Conv2d(8, 8, 3, padding=1, groups=8, rng=0),  # depthwise
        nn.Conv2d(8, 16, 3, padding=1, groups=4, rng=1),  # grouped
        nn.Flatten(),
    )
    x = rng.standard_normal((3, 8, 12, 12)).astype(np.float32)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), _module_logits(model, x))


def test_large_batch_blocked_gather_bit_exact():
    """Batches large enough to split into several K-major blocks."""
    rng = np.random.default_rng(19)
    model = build_model("resnet18", num_classes=10, scale=0.125, image_size=32, seed=0)
    x = rng.standard_normal((64, 3, 32, 32)).astype(np.float32)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)
    # Ragged re-use: a different batch size on the same plan (fresh
    # block partitioning, including a ragged tail block).
    y = rng.standard_normal((37, 3, 32, 32)).astype(np.float32)
    np.testing.assert_array_equal(plan(y), _module_logits(model, y))


# ----------------------------------------------------------------------
# Threaded GEMM
# ----------------------------------------------------------------------
def test_resolve_gemm_workers_semantics():
    from repro.fault.parallel import available_workers

    assert resolve_gemm_workers(None) == 1
    assert resolve_gemm_workers(0) == 1
    assert resolve_gemm_workers(1) == 1
    assert resolve_gemm_workers(4) == 4
    assert resolve_gemm_workers("auto") == available_workers()
    with pytest.raises(ConfigurationError):
        resolve_gemm_workers(-2)


def test_threaded_gemm_bit_exact_vs_serial(monkeypatch):
    """Every threaded kernel path must match the serial schedule bitwise.

    The work threshold is forced to zero so even small layers take the
    partitioned path, and several widths are exercised (uneven row
    splits included).
    """
    monkeypatch.setattr(kernels_module, "GEMM_THREAD_MIN_WORK", 0)
    rng = np.random.default_rng(20)
    model = build_model("resnet18", num_classes=10, scale=0.125, image_size=32, seed=0)
    x = rng.standard_normal((7, 3, 32, 32)).astype(np.float32)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)
    for workers in (2, 3, 5):
        plan.set_gemm_workers(workers)
        assert f"@{workers}" in plan.describe()
        np.testing.assert_array_equal(plan(x), reference)
    plan.set_gemm_workers(None)  # back to serial
    np.testing.assert_array_equal(plan(x), reference)


def test_threaded_direct1x1_and_grouped_bit_exact(monkeypatch):
    monkeypatch.setattr(kernels_module, "GEMM_THREAD_MIN_WORK", 0)
    rng = np.random.default_rng(21)
    model = nn.Sequential(
        nn.Conv2d(8, 16, 1, stride=2, rng=0),      # direct1x1, strided
        nn.Conv2d(16, 16, 3, padding=1, groups=4, rng=1),  # grouped
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(16 * 6 * 6, 10, rng=2),
    )
    x = rng.standard_normal((9, 8, 12, 12)).astype(np.float32)
    reference = _module_logits(model, x)
    plan = compile_model(model, x.shape, gemm_workers=4)
    np.testing.assert_array_equal(plan(x), reference)


def test_compile_model_accepts_gemm_workers():
    rng = np.random.default_rng(22)
    model = build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    x = rng.standard_normal((32, 3, 16, 16)).astype(np.float32)
    reference = _module_logits(model, x)
    serial = compile_model(model, x.shape)
    threaded = compile_model(model, x.shape, gemm_workers=4)
    auto = compile_model(model, x.shape, gemm_workers="auto")
    np.testing.assert_array_equal(serial(x), reference)
    np.testing.assert_array_equal(threaded(x), reference)
    np.testing.assert_array_equal(auto(x), reference)


# ----------------------------------------------------------------------
# Campaign SDC streams: threading is invisible to results
# ----------------------------------------------------------------------
def _campaign_result(runtime: bool, gemm_workers=None):
    model = quantize_module(
        build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=192, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(
            dataset, batch_size=64, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
        ),
        runtime=runtime,
        gemm_workers=gemm_workers,
    )
    campaign = FaultCampaign(
        FaultInjector(model), evaluator.bind(model), trials=3, seed=0
    )
    return campaign.run(BitFlipFaultModel.at_rate(1e-4))


def test_campaign_sdc_stream_identical_with_threading_forced(monkeypatch):
    """Accuracy/flip streams are bit-identical: module path, serial
    runtime, and force-threaded runtime (the 1-core determinism
    contract holds with the knob both off and on)."""
    monkeypatch.setattr(kernels_module, "GEMM_THREAD_MIN_WORK", 0)
    module_result = _campaign_result(runtime=False)
    serial_result = _campaign_result(runtime=True)
    threaded_result = _campaign_result(runtime=True, gemm_workers=4)
    for other in (serial_result, threaded_result):
        np.testing.assert_array_equal(module_result.accuracies, other.accuracies)
        np.testing.assert_array_equal(module_result.flip_counts, other.flip_counts)


def test_evaluator_gemm_workers_survives_pickle():
    import pickle

    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=64, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=32), runtime=True, gemm_workers=3
    )
    clone = pickle.loads(pickle.dumps(evaluator))
    assert clone.gemm_workers == 3
    assert clone._plans == {}
