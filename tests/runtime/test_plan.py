"""InferencePlan mechanics: refresh contract, buffers, threading, pickling."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro import nn
from repro.autograd.tensor import Tensor
from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.errors import ConfigurationError
from repro.eval.evaluator import Evaluator, forward_logits
from repro.models.registry import build_model
from repro.optim import SGD
from repro.optim.adam import Adam
from repro.runtime import compile_model, register_block_compiler
from repro.runtime.kernels import FallbackKernel


def _lenet():
    return build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)


def _batch(rng, n=4, size=16):
    return rng.standard_normal((n, 3, size, size)).astype(np.float32)


# ----------------------------------------------------------------------
# Construction and execution basics
# ----------------------------------------------------------------------
def test_plan_accepts_sample_shape_and_any_batch_size():
    rng = np.random.default_rng(0)
    model = _lenet()
    plan = compile_model(model, (3, 16, 16))  # sample shape, batch inferred
    for n in (1, 3, 8, 3):  # revisit a size: buffers must be reusable
        x = _batch(rng, n)
        np.testing.assert_array_equal(plan(x), forward_logits(model, x))


def test_plan_returns_owned_arrays_and_never_writes_input():
    rng = np.random.default_rng(1)
    model = _lenet()
    plan = compile_model(model, (4, 3, 16, 16))
    x = _batch(rng, 4)
    snapshot = x.copy()
    first = plan(x)
    first_copy = first.copy()
    plan(rng.standard_normal(x.shape).astype(np.float32))
    np.testing.assert_array_equal(x, snapshot)  # input untouched
    np.testing.assert_array_equal(first, first_copy)  # output not recycled


def test_plan_accepts_tensor_input():
    rng = np.random.default_rng(2)
    model = _lenet()
    plan = compile_model(model, (2, 3, 16, 16))
    x = _batch(rng, 2)
    np.testing.assert_array_equal(plan(Tensor(x)), plan(x))


def test_plan_runs_eval_semantics_regardless_of_training_flag():
    """Plans are inference-only: train-mode Dropout/BN never leak in."""
    rng = np.random.default_rng(3)
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=0),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.Dropout(0.5, rng=0),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 10, rng=1),
    )
    x = _batch(rng, 4)
    model.eval()
    reference = forward_logits(model, x)
    model.train(True)  # plan output must not change
    plan = compile_model(model, x.shape)
    np.testing.assert_array_equal(plan(x), reference)
    # BN running stats must not have been touched by plan forwards.
    assert int(model[1].num_batches_tracked) == 0


def test_empty_input_shape_rejected():
    with pytest.raises(ConfigurationError):
        compile_model(_lenet(), ())


# ----------------------------------------------------------------------
# Refresh / invalidation contract
# ----------------------------------------------------------------------
def test_replaced_parameter_array_is_detected_automatically():
    rng = np.random.default_rng(4)
    model = _lenet()
    x = _batch(rng, 2)
    plan = compile_model(model, x.shape)
    plan(x)
    param = next(model.parameters())
    param.data = np.zeros_like(param.data)  # array replaced, not signalled
    np.testing.assert_array_equal(plan(x), forward_logits(model, x))


@pytest.mark.parametrize("make_optimizer", [
    lambda params: SGD(params, lr=0.05, momentum=0.9),
    lambda params: Adam(params, lr=0.01),
])
def test_plan_tracks_optimizer_steps(make_optimizer):
    """A compiled plan never serves pre-step weights after optimizer.step().

    Optimizer updates rebind ``param.data`` to fresh arrays without
    signalling the plan (the audited RPL001 baseline entries in
    optim/sgd.py and optim/adam.py); the plan's per-call identity probe
    must catch the rebind on its own.
    """
    rng = np.random.default_rng(6)
    model = _lenet()
    x = _batch(rng, 2)
    plan = compile_model(model, x.shape)
    before = plan(x).copy()
    params = list(model.parameters())
    optimizer = make_optimizer(params)
    for param in params:
        param.grad = rng.standard_normal(param.shape).astype(np.float32)
    optimizer.step()
    after = plan(x)
    np.testing.assert_array_equal(after, forward_logits(model, x))
    assert not np.array_equal(after, before)


def test_in_place_buffer_mutation_needs_refresh():
    """The documented edge: in-place writes to folded BN state."""
    rng = np.random.default_rng(5)
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=0),
        nn.BatchNorm2d(4),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 10, rng=1),
    )
    x = _batch(rng, 2)
    plan = compile_model(model, x.shape)
    plan(x)
    # Write *through* the existing running_var array: same object, so
    # the staleness probe cannot see it, and the folded inv_std is a
    # computed copy (unlike the mean, which is a live view)...
    model[1].running_var[...] = 9.0
    stale = plan(x)
    fresh_reference = forward_logits(model, x)
    assert not np.array_equal(stale, fresh_reference)
    # ...until refresh() refolds the constants.
    plan.refresh()
    np.testing.assert_array_equal(plan(x), fresh_reference)


def test_load_state_dict_invalidates_plans():
    rng = np.random.default_rng(6)
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=0),
        nn.BatchNorm2d(4),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 10, rng=1),
    )
    donor = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=7),
        nn.BatchNorm2d(4),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 10, rng=8),
    )
    donor[1].running_mean[...] = 0.5  # distinct folded constants
    x = _batch(rng, 2)
    plan = compile_model(model, x.shape)
    plan(x)
    model.load_state_dict(donor.state_dict())
    np.testing.assert_array_equal(plan(x), forward_logits(model, x))


# ----------------------------------------------------------------------
# Fallback and extension points
# ----------------------------------------------------------------------
class _OddBlock(nn.Module):
    """A custom module the compiler has never heard of."""

    def __init__(self) -> None:
        super().__init__()
        self.linear = nn.Linear(8, 8, rng=0)

    def forward(self, x):
        return self.linear(x) * 0.5 + x


def test_unknown_module_falls_back_to_module_forward():
    rng = np.random.default_rng(7)
    model = nn.Sequential(nn.Linear(8, 8, rng=1), _OddBlock(), nn.Linear(8, 4, rng=2))
    x = rng.standard_normal((3, 8)).astype(np.float32)
    plan = compile_model(model, x.shape)
    assert any(isinstance(step, FallbackKernel) for step in plan.steps)
    np.testing.assert_array_equal(plan(x), forward_logits(model, x))


def test_register_block_compiler_overrides_fallback():
    class _Doubler(nn.Module):
        def forward(self, x):
            return x * 2.0

    class _DoublerKernel:
        def refresh(self):
            pass

        def run(self, x):
            return x * np.float32(2.0)

        def describe(self):
            return "doubler"

    register_block_compiler(_Doubler, lambda module: [_DoublerKernel()])
    model = nn.Sequential(nn.Linear(4, 4, rng=0), _Doubler())
    x = np.random.default_rng(8).standard_normal((2, 4)).astype(np.float32)
    plan = compile_model(model, x.shape)
    assert "doubler" in plan.describe()
    np.testing.assert_array_equal(plan(x), forward_logits(model, x))


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_plan_calls_are_serialised_and_correct():
    rng = np.random.default_rng(9)
    model = _lenet()
    plan = compile_model(model, (4, 3, 16, 16))
    batches = [_batch(rng, 4) for _ in range(4)]
    expected = [forward_logits(model, b) for b in batches]
    results: dict[int, np.ndarray] = {}
    errors: list[BaseException] = []

    def worker(index: int) -> None:
        try:
            for _ in range(5):
                results[index] = plan(batches[index])
        except BaseException as error:  # noqa: BLE001 - surface in main thread
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for index, reference in enumerate(expected):
        np.testing.assert_array_equal(results[index], reference)


# ----------------------------------------------------------------------
# Evaluator integration
# ----------------------------------------------------------------------
def _evaluator(runtime: bool) -> Evaluator:
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=128, image_size=16, seed=0, split="test"
    )
    loader = DataLoader(
        dataset, batch_size=50, transform=Normalize(SYNTH_MEAN, SYNTH_STD)
    )
    return Evaluator(loader, runtime=runtime)


def test_evaluator_runtime_accuracy_matches_module_path():
    model = _lenet()
    assert _evaluator(True).accuracy(model) == _evaluator(False).accuracy(model)


def test_evaluator_pickles_without_plans():
    model = _lenet()
    evaluator = _evaluator(True)
    before = evaluator.accuracy(model)  # compiles and caches a plan
    clone = pickle.loads(pickle.dumps(evaluator))
    assert clone._plans == {}
    assert clone.runtime is True
    assert clone.accuracy(_lenet()) == before


def test_model_with_compiled_plan_still_pickles():
    """Plan registration must not poison model transport (spawn pools).

    Compiling a plan attaches weakrefs to the model; pickling — what a
    spawn-based campaign pool does with the injector/evaluator payload —
    must still work, shipping the model without its process-local plans.
    """
    rng = np.random.default_rng(10)
    model = _lenet()
    x = _batch(rng, 2)
    plan = compile_model(model, x.shape)
    reference = plan(x)
    clone = pickle.loads(pickle.dumps(model))
    assert "_runtime_plans" not in clone.__dict__
    np.testing.assert_array_equal(forward_logits(clone, x), reference)
    np.testing.assert_array_equal(compile_model(clone, x.shape)(x), reference)
    # The original's plans keep working after the round trip.
    np.testing.assert_array_equal(plan(x), reference)
