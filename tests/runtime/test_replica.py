"""ReplicaPlan: share-until-diverge lane evaluation.

The replica path's contract is the same as the plan's — exact float32
equality with the serial forward — plus amortisation mechanics worth
pinning down on their own: the divergence map (faults start lanes at
the first step reading the faulted parameter), the snapshot cache
(budgeted, evicting, degrading to full forwards — never to different
bits), and replay safety (fallback kernels and armed activation faults
disable suffix replay rather than corrupt it).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import nn
from repro.autograd.tensor import Tensor
from repro.errors import ConfigurationError
from repro.fault.fault_model import BitFlipFaultModel
from repro.fault.injector import FaultInjector
from repro.fault.sites import FaultSites
from repro.models.registry import build_model
from repro.quant import quantize_module
from repro.runtime import ReplicaPlan, compile_model, fault_parameters


def _lenet():
    return quantize_module(
        build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    )


def _batch(seed=3, n=4, size=16):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, size, size)).astype(np.float32)


def _sites_in_layer(injector, layer, bit=12):
    """One flip site addressed into ``layer``'s word range."""
    offset = sum(injector.parameter_words[:layer])
    words = injector.parameter_words[layer]
    return FaultSites(
        np.asarray([offset + words // 2], dtype=np.int64),
        np.asarray([bit], dtype=np.int64),
    )


class TestLaneForward:
    def test_faulted_lane_matches_serial_plan_bitwise(self):
        model = _lenet()
        injector = FaultInjector(model)
        x = _batch()
        plan = compile_model(model, x.shape)
        replica = plan.replicate(4)
        clean = replica.prepare(0, x).copy()

        last = len(injector.parameter_words) - 1
        sites = _sites_in_layer(injector, last)
        params = fault_parameters(injector, sites)
        assert replica.lane_start(params) > 0  # suffix path actually taken
        with injector.inject(sites):
            lane = replica.lane_forward(0, x, params)
            serial = compile_model(model, x.shape)(x)
        np.testing.assert_array_equal(lane, serial)
        assert not np.array_equal(lane, clean)
        # Restore is visible: the cached clean pass is still valid.
        np.testing.assert_array_equal(replica.prepare(0, x), clean)

    def test_every_layer_diverges_bit_exactly(self):
        model = _lenet()
        injector = FaultInjector(model)
        x = _batch(seed=5)
        replica = compile_model(model, x.shape, replicas=2)
        replica.prepare(0, x)
        for layer in range(len(injector.parameter_words)):
            sites = _sites_in_layer(injector, layer)
            params = fault_parameters(injector, sites)
            with injector.inject(sites):
                lane = replica.lane_forward(0, x, params)
                serial = compile_model(model, x.shape)(x)
            np.testing.assert_array_equal(lane, serial)

    def test_first_layer_fault_starts_at_zero(self):
        model = _lenet()
        injector = FaultInjector(model)
        replica = compile_model(model, (2, 3, 16, 16), replicas=2)
        replica.prepare(0, _batch(n=2))
        params = fault_parameters(injector, _sites_in_layer(injector, 0))
        assert replica.lane_start(params) == 0
        assert replica.lane_start(None) == 0

    def test_evicted_snapshot_degrades_to_full_forward(self):
        model = _lenet()
        injector = FaultInjector(model)
        x = _batch(seed=7)
        replica = ReplicaPlan(compile_model(model, x.shape), 4, snapshot_budget=0)
        replica.prepare(0, x)
        sites = _sites_in_layer(injector, len(injector.parameter_words) - 1)
        params = fault_parameters(injector, sites)
        with injector.inject(sites):
            lane = replica.lane_forward(0, x, params)
            serial = compile_model(model, x.shape)(x)
        np.testing.assert_array_equal(lane, serial)

    def test_prepare_caches_per_batch_key(self):
        model = _lenet()
        x = _batch(seed=9)
        replica = compile_model(model, x.shape, replicas=2)
        first = replica.prepare(0, x)
        assert replica.prepare(0, x) is first  # cache hit, no recompute
        replica.invalidate()
        rebuilt = replica.prepare(0, x)
        assert rebuilt is not first
        np.testing.assert_array_equal(rebuilt, first)


class TestReplaySafety:
    def test_plain_model_is_replay_safe(self):
        replica = compile_model(_lenet(), (2, 3, 16, 16), replicas=2)
        assert replica.replay_safe()

    def test_fallback_kernel_disables_replay(self):
        class Opaque(nn.Module):
            def forward(self, x):
                return x

        model = nn.Sequential(nn.Linear(4, 4, rng=0), Opaque())
        replica = compile_model(model, (2, 4), replicas=2)
        assert not replica.replay_safe()

    def test_armed_activation_fault_disables_replay(self):
        from repro.fault import ActivationFaultInjector, ActivationFaultModel

        model = nn.Sequential(nn.Linear(4, 4, rng=0), nn.ReLU(), nn.Linear(4, 2, rng=1))
        injector = ActivationFaultInjector(model)
        replica = compile_model(model, (2, 4), replicas=2)
        assert replica.replay_safe()
        with injector.active(ActivationFaultModel.at_rate(1e-3), seed=0):
            assert not replica.replay_safe()
        assert replica.replay_safe()


class TestGuards:
    def test_zero_replicas_rejected(self):
        plan = compile_model(_lenet(), (2, 3, 16, 16))
        with pytest.raises(ConfigurationError):
            plan.replicate(0)

    def test_replica_plan_refuses_pickling(self):
        replica = compile_model(_lenet(), (2, 3, 16, 16), replicas=2)
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(replica)

    def test_fault_parameters_without_hooks_is_none(self):
        assert fault_parameters(object(), np.asarray([1])) is None

    def test_fault_parameters_maps_sites_to_parameters(self):
        model = _lenet()
        injector = FaultInjector(model)
        sites = injector.sample(BitFlipFaultModel.exact(3), rng=0)
        params = fault_parameters(injector, sites)
        assert params is not None and 1 <= len(params) <= 3
        live = {id(p) for p in model.parameters()}
        assert all(id(p) in live for p in params)


class TestSurgeryInvalidation:
    def test_structure_change_between_prepare_and_lane(self):
        """Surgery after prepare(): lane_forward must not replay stale taps."""
        model = nn.Sequential(
            nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1)
        )
        model = quantize_module(model)
        injector = FaultInjector(model)
        x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        plan = compile_model(model, x.shape)
        replica = plan.replicate(2)
        replica.prepare(0, x)
        model.set_submodule("1", nn.Identity())  # surgery: step indices shift
        sites = _sites_in_layer(injector, len(injector.parameter_words) - 1)
        params = fault_parameters(injector, sites)
        with injector.inject(sites):
            lane = replica.lane_forward(0, x, params)
            serial = compile_model(model, x.shape)(x)
        np.testing.assert_array_equal(lane, serial)
