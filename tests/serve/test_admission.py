"""Admission control: bounded queues, 429 sheds, Retry-After hints.

Unit tests drive :class:`AdmissionController` directly; the HTTP tests
hold the admission queue full with a slow micro-batch deadline and
assert the overflow request is shed as a real 429 carrying both the
``Retry-After`` header and the precise ``retry_after_s`` body hint.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.checkpoint import save_protected
from repro.errors import ConfigurationError, ServerOverloadedError
from repro.models.lenet import build_lenet
from repro.serve import (
    AdmissionController,
    ModelRegistry,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeConfig,
)

IMAGE_SIZE = 16


class TestAdmissionController:
    def test_admit_until_global_bound_then_shed(self):
        controller = AdmissionController(max_pending=2)
        tickets = [controller.admit("a"), controller.admit("b")]
        with pytest.raises(ServerOverloadedError, match="server is at capacity"):
            controller.admit("c")
        assert controller.pending == 2
        assert controller.shed == 1
        for ticket in tickets:
            ticket.release()
        assert controller.pending == 0
        controller.admit("c").release()  # slots free again

    def test_per_model_bound_sheds_only_the_hot_model(self):
        controller = AdmissionController(max_pending=8, model_pending=1)
        ticket = controller.admit("hot")
        with pytest.raises(ServerOverloadedError, match="'hot' is at capacity"):
            controller.admit("hot")
        other = controller.admit("cold")  # global headroom remains usable
        ticket.release()
        other.release()
        assert controller.shed == 1
        assert controller.admitted == 2

    def test_ticket_release_is_idempotent(self):
        controller = AdmissionController(max_pending=4)
        ticket = controller.admit("a")
        ticket.release()
        ticket.release()  # double release must not underflow
        assert controller.pending == 0
        with controller.admit("a"):
            assert controller.pending == 1
        assert controller.pending == 0  # context manager released

    def test_retry_hint_scales_with_saturation(self):
        shallow = AdmissionController(max_pending=1)
        shallow.admit("a")
        with pytest.raises(ServerOverloadedError) as excinfo:
            shallow.admit("a")
        assert excinfo.value.retry_after_s == pytest.approx(0.1)

        deep = AdmissionController(max_pending=640)
        tickets = [deep.admit("a") for _ in range(640)]
        with pytest.raises(ServerOverloadedError) as excinfo:
            deep.admit("a")
        assert excinfo.value.retry_after_s == pytest.approx(5.0)  # clamped
        for ticket in tickets:
            ticket.release()

    def test_report_shape(self):
        controller = AdmissionController(max_pending=4, model_pending=2)
        ticket = controller.admit("a")
        report = controller.report()
        assert report == {
            "pending": 1,
            "max_pending": 4,
            "model_pending": 2,
            "per_model": {"a": 1},
            "admitted": 1,
            "shed": 0,
        }
        ticket.release()
        assert controller.report()["per_model"] == {}

    def test_observers_fire(self):
        sheds, depths = [], []
        controller = AdmissionController(
            max_pending=1,
            on_shed=lambda model, reason: sheds.append((model, reason)),
            on_depth=lambda model, depth: depths.append((model, depth)),
        )
        ticket = controller.admit("a")
        with pytest.raises(ServerOverloadedError):
            controller.admit("b")
        ticket.release()
        assert sheds == [("b", "global")]
        assert depths == [("a", 1), ("a", 0)]

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="max_pending"):
            AdmissionController(max_pending=0)
        with pytest.raises(ConfigurationError, match="model_pending"):
            AdmissionController(max_pending=4, model_pending=0)
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            AdmissionController(max_pending=4, model_pending=8)

    def test_refuses_to_pickle(self):
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(AdmissionController())


def _checkpoint(tmp_path_factory, name):
    model = build_lenet(
        num_classes=10, scale=0.25, seed=0, image_size=IMAGE_SIZE
    )
    return save_protected(
        tmp_path_factory.mktemp("admission") / f"{name}.npz",
        model,
        meta={
            "model": "lenet",
            "dataset": "synth10",
            "method": "none",
            "num_classes": 10,
            "scale": 0.25,
            "image_size": IMAGE_SIZE,
            "seed": 0,
            "format": "Q15.16",
        },
    )


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    return _checkpoint(tmp_path_factory, "m")


@pytest.fixture(scope="module")
def sample(checkpoint):
    return np.zeros((1, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)


class TestShedOverHttp:
    def _server(self, checkpoint, **overrides):
        registry = ModelRegistry(capacity=2)
        registry.register("a", checkpoint)
        registry.register("b", checkpoint)
        defaults = dict(
            # A large batch with a slow flush deadline parks admitted
            # requests in the batcher long enough to observe the shed
            # deterministically.
            max_batch=64,
            max_latency_ms=500.0,
            max_pending=1,
        )
        defaults.update(overrides)
        app = ServeApp(registry, ServeConfig(**defaults))
        return ReproServer(app)

    def test_queue_full_returns_429_with_retry_after(self, checkpoint, sample):
        with self._server(checkpoint) as server:
            client = ServeClient(server.url, timeout=30.0)
            client.wait_ready()
            # Occupy the single admission slot via the app (no HTTP
            # thread needed); it stays pending until the 500ms flush.
            _, future = server.app.submit_predict(sample, model="a")
            with pytest.raises(ServerOverloadedError) as excinfo:
                client.predict(sample, model="a")
            assert excinfo.value.retry_after_s >= 0.1
            future.result(timeout=10.0)  # the occupant still completes
            metrics = client.metrics()
            assert metrics["admission"]["shed"]["a"]["global"] == 1
            health = client.healthz()
            assert health.admission["shed"] == 1
            assert health.admission["max_pending"] == 1

    def test_retry_after_header_is_integral_seconds(self, checkpoint, sample):
        import urllib.error
        import urllib.request

        from repro.serve.protocol import PredictRequest, dump_payload

        with self._server(checkpoint) as server:
            client = ServeClient(server.url, timeout=30.0)
            client.wait_ready()
            _, future = server.app.submit_predict(sample, model="a")
            body = dump_payload(
                PredictRequest(inputs=sample, model="a").to_payload()
            )
            request = urllib.request.Request(
                f"{server.url}/v1/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            future.result(timeout=10.0)

    def test_per_model_cap_spares_other_models(self, checkpoint, sample):
        with self._server(
            checkpoint, max_pending=8, model_pending=1, max_latency_ms=300.0
        ) as server:
            client = ServeClient(server.url, timeout=30.0)
            client.wait_ready()
            _, future = server.app.submit_predict(sample, model="a")
            with pytest.raises(ServerOverloadedError, match="'a' is at capacity"):
                client.predict(sample, model="a")
            # The cold model is unaffected by the hot model's cap.
            response = client.predict(sample, model="b")
            assert len(response.predictions) == 1
            future.result(timeout=10.0)
            assert client.metrics()["admission"]["shed"]["a"]["model"] == 1
