"""The asyncio front door: same protocol, same bytes, no parked threads.

:class:`AsyncReproServer` shares :class:`~repro.serve.routes.Router`
with the threaded front, so these tests focus on what the transport owns:
HTTP/1.1 keep-alive, concurrent in-flight requests on one event loop,
graceful lifecycle, and byte-identity with the threaded server's
responses for the same requests.
"""

from __future__ import annotations

import http.client
import json
import urllib.request

import numpy as np
import pytest

from repro.core.checkpoint import save_protected
from repro.errors import ConfigurationError
from repro.eval.evaluator import forward_logits
from repro.models.lenet import build_lenet
from repro.serve import (
    AsyncReproServer,
    ModelRegistry,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeConfig,
    run_load,
)
from repro.serve.protocol import PredictRequest, dump_payload

IMAGE_SIZE = 16


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    model = build_lenet(
        num_classes=10, scale=0.25, seed=0, image_size=IMAGE_SIZE
    )
    return save_protected(
        tmp_path_factory.mktemp("aio") / "m.npz",
        model,
        meta={
            "model": "lenet",
            "dataset": "synth10",
            "method": "none",
            "num_classes": 10,
            "scale": 0.25,
            "image_size": IMAGE_SIZE,
            "seed": 0,
            "format": "Q15.16",
        },
    )


@pytest.fixture(scope="module")
def batch():
    return (
        np.random.default_rng(11)
        .standard_normal((4, 3, IMAGE_SIZE, IMAGE_SIZE))
        .astype(np.float32)
    )


def _app(checkpoint, **overrides):
    registry = ModelRegistry(capacity=2)
    registry.register("m", checkpoint)
    defaults = dict(max_batch=8, max_latency_ms=2.0)
    defaults.update(overrides)
    return ServeApp(registry, ServeConfig(**defaults))


@pytest.fixture()
def server(checkpoint):
    with AsyncReproServer(_app(checkpoint)) as running:
        yield running


class TestAsyncFront:
    def test_lifecycle(self, checkpoint):
        server = AsyncReproServer(_app(checkpoint))
        with pytest.raises(ConfigurationError, match="not running"):
            _ = server.url
        server.start()
        try:
            with pytest.raises(ConfigurationError, match="already running"):
                server.start()
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.stop()
        server.stop()  # idempotent

    def test_typed_client_speaks_to_async_front(self, server, batch):
        client = ServeClient(server.url, timeout=30.0)
        health = client.wait_ready()
        assert health.status == "ok"
        response = client.predict(batch, model="m", return_logits=True)
        entry = server.app.registry.get("m")
        local = forward_logits(entry.model, batch)
        assert list(response.predictions) == local.argmax(axis=1).tolist()
        np.testing.assert_array_equal(
            np.asarray(response.logits, dtype=np.float32), local
        )
        assert {m.name for m in client.models().models} == {"m"}

    def test_keep_alive_reuses_one_connection(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30.0)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/healthz")
                response = conn.getresponse()
                assert response.status == 200
                assert response.headers["Connection"] == "keep-alive"
                payload = json.loads(response.read().decode("utf-8"))
                assert payload["status"] == "ok"
        finally:
            conn.close()

    def test_connection_close_honoured(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30.0)
        try:
            conn.request("GET", "/v1/healthz", headers={"Connection": "close"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.headers["Connection"] == "close"
            response.read()
        finally:
            conn.close()

    def test_error_mapping_matches_router_contract(self, server, batch):
        client = ServeClient(server.url, timeout=30.0)
        client.wait_ready()
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client.predict(batch, model="nope")
        with pytest.raises(ConfigurationError, match="HTTP 400"):
            client.predict(np.zeros((2, 5), dtype=np.float32), model="m")
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client._request("/nothing-here")

    def test_legacy_alias_serves_with_deprecation_header(self, server):
        with urllib.request.urlopen(
            f"{server.url}/healthz", timeout=30.0
        ) as response:
            assert response.status == 200
            assert response.headers["Deprecation"] == "true"
            assert "successor-version" in response.headers["Link"]

    def test_concurrent_load_on_one_event_loop(self, server, batch):
        client = ServeClient(server.url, timeout=60.0)
        client.wait_ready()
        report = run_load(client, batch, requests=24, concurrency=8, model="m")
        assert report.errors == 0
        assert report.sheds == 0
        assert report.requests == 24
        # Every sample makes it through the micro-batcher; the batch
        # observation trails the future resolution slightly, so poll.
        import time

        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            snapshot = server.app.metrics.snapshot()
            if snapshot["batches"]["samples_served"] >= 24 * len(batch):
                break
            time.sleep(0.05)
        assert snapshot["batches"]["samples_served"] >= 24 * len(batch)


class TestFrontEquivalence:
    """Both fronts render through one router: same requests, same bytes."""

    def test_predict_bytes_identical_across_fronts(self, checkpoint, batch):
        body = dump_payload(
            PredictRequest(
                inputs=batch, model="m", return_logits=True
            ).to_payload()
        )

        def fetch(url):
            request = urllib.request.Request(
                f"{url}/v1/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return response.read()

        with ReproServer(_app(checkpoint)) as threaded:
            ServeClient(threaded.url).wait_ready()
            threaded_bytes = fetch(threaded.url)
        with AsyncReproServer(_app(checkpoint)) as asyncio_front:
            ServeClient(asyncio_front.url).wait_ready()
            async_bytes = fetch(asyncio_front.url)
        assert threaded_bytes == async_bytes

    def test_models_bytes_identical_across_fronts(self, checkpoint):
        def fetch(url):
            with urllib.request.urlopen(f"{url}/v1/models", timeout=30.0) as r:
                return r.read()

        with ReproServer(_app(checkpoint)) as threaded:
            ServeClient(threaded.url).wait_ready()
            threaded_bytes = fetch(threaded.url)
        with AsyncReproServer(_app(checkpoint)) as asyncio_front:
            ServeClient(asyncio_front.url).wait_ready()
            async_bytes = fetch(asyncio_front.url)
        assert threaded_bytes == async_bytes


class TestSloOverAsyncFront:
    def test_slo_report_surfaces_in_healthz(self, checkpoint, batch):
        app = _app(checkpoint, slo_p99_ms=10_000.0)
        with AsyncReproServer(app) as server:
            client = ServeClient(server.url, timeout=30.0)
            client.wait_ready()
            for _ in range(4):
                client.predict(batch, model="m")
            slo = client.healthz().slo
            assert slo is not None
            assert slo["target_p99_ms"] == 10_000.0
            assert slo["requests"] == 4
            assert slo["violations"] == 0
            assert slo["burn_rate"] == 0.0
            assert slo["healthy"] is True
            assert slo["p99_ms"] > 0.0

    def test_violations_burn_the_error_budget(self, checkpoint, batch):
        # An absurdly tight target: every request violates, burn rate
        # saturates at 100x the 1% budget.
        app = _app(checkpoint, slo_p99_ms=0.0001)
        with AsyncReproServer(app) as server:
            client = ServeClient(server.url, timeout=30.0)
            client.wait_ready()
            for _ in range(4):
                client.predict(batch, model="m")
            slo = client.healthz().slo
            assert slo["violations"] == 4
            assert slo["violation_rate"] == 1.0
            assert slo["burn_rate"] == 100.0
            assert slo["healthy"] is False
