"""MicroBatcher: coalescing, deadlines, error propagation, lifecycle."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import MicroBatcher


def _double(stacked: np.ndarray) -> np.ndarray:
    return stacked * 2.0


class TestCorrectness:
    def test_single_request_round_trip(self):
        with MicroBatcher(_double, max_batch=8, max_latency=0.0) as batcher:
            out = batcher.predict(np.arange(6.0).reshape(2, 3))
            np.testing.assert_array_equal(out, np.arange(6.0).reshape(2, 3) * 2)

    def test_results_scatter_back_in_order(self):
        """Each caller gets exactly its own rows, whatever the batching."""
        with MicroBatcher(_double, max_batch=16, max_latency=0.02) as batcher:
            payloads = [np.full((1 + i % 3, 4), float(i)) for i in range(12)]
            futures = [batcher.submit(p) for p in payloads]
            for payload, future in zip(payloads, futures):
                np.testing.assert_array_equal(future.result(timeout=10), payload * 2)

    def test_coalesces_concurrent_requests(self):
        """Concurrent submits must land in fewer forward passes."""
        sizes = []
        gate = threading.Event()

        def run(stacked):
            gate.wait(5)  # hold the first batch until the queue is full
            sizes.append(stacked.shape[0])
            return stacked

        batcher = MicroBatcher(run, max_batch=64, max_latency=0.05)
        try:
            futures = [batcher.submit(np.zeros((1, 2))) for _ in range(20)]
            gate.set()
            for future in futures:
                future.result(timeout=10)
            assert sum(sizes) == 20
            assert len(sizes) < 20  # actually batched
            assert max(sizes) > 1
        finally:
            batcher.close()

    def test_zero_latency_serves_immediately(self):
        sizes = []

        def run(stacked):
            sizes.append(stacked.shape[0])
            return stacked

        with MicroBatcher(run, max_batch=64, max_latency=0.0) as batcher:
            batcher.predict(np.zeros((1, 2)))
            assert sizes == [1]


class TestErrors:
    def test_run_batch_failure_propagates_to_every_caller(self):
        def boom(stacked):
            raise RuntimeError("model exploded")

        with MicroBatcher(boom, max_batch=8, max_latency=0.01) as batcher:
            futures = [batcher.submit(np.zeros((1, 2))) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="model exploded"):
                    future.result(timeout=10)

    def test_wrong_output_rows_rejected(self):
        with MicroBatcher(lambda s: s[:1], max_batch=8, max_latency=0.0) as b:
            future = b.submit(np.zeros((3, 2)))
            with pytest.raises(ConfigurationError, match="returned 1 rows"):
                future.result(timeout=10)

    def test_oversized_request_rejected(self):
        with MicroBatcher(_double, max_batch=2, max_latency=0.0) as batcher:
            with pytest.raises(ConfigurationError, match="split it client-side"):
                batcher.submit(np.zeros((3, 2)))

    def test_empty_request_rejected(self):
        with MicroBatcher(_double) as batcher:
            with pytest.raises(ConfigurationError, match="leading sample axis"):
                batcher.submit(np.zeros((0, 2)))

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch": 0}, {"max_latency": -1.0}, {"workers": 0}]
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MicroBatcher(_double, **kwargs)


class TestLifecycle:
    def test_close_rejects_new_work_and_is_idempotent(self):
        batcher = MicroBatcher(_double)
        batcher.close()
        batcher.close()
        with pytest.raises(ConfigurationError, match="closed"):
            batcher.submit(np.zeros((1, 2)))

    def test_queued_work_finishes_before_close_returns(self):
        slow = threading.Event()

        def run(stacked):
            slow.wait(0.05)
            return stacked

        batcher = MicroBatcher(run, max_batch=4, max_latency=0.0)
        futures = [batcher.submit(np.full((1, 2), float(i))) for i in range(6)]
        batcher.close()
        assert all(future.done() for future in futures)
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=1), np.full((1, 2), float(i))
            )
