"""ChaosEngine: guaranteed restore, deterministic streams, SDC counting."""

import numpy as np
import pytest

from repro.eval.evaluator import forward_logits
from repro.quant.fixed_point import Q15_16
from repro.quant.model import quantize_module
from repro.serve import ChaosConfig, ChaosEngine, ServerMetrics
from repro.serve.registry import ServedModel

# High enough that a LeNet-sized fault space (~2M bits) flips bits in
# every batch with overwhelming probability.
BER = 5e-5


@pytest.fixture
def entry(trained_model):
    quantize_module(trained_model, Q15_16)
    return ServedModel(
        name="lenet",
        path="unused.npz",
        model=trained_model,
        meta={"model": "lenet", "image_size": 16},
        fmt=Q15_16,
    )


@pytest.fixture
def batch(test_loader):
    inputs, _ = next(iter(test_loader))
    return inputs.data[:16]


def _forward(entry):
    return lambda arr: forward_logits(entry.model, arr)


class TestRestore:
    def test_parameters_bit_exact_after_batch(self, entry, batch):
        engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=3))
        before = {k: v.copy() for k, v in entry.model.state_dict().items()}
        for _ in range(5):
            engine.run_batch(_forward(entry), batch)
        after = entry.model.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(after[key], value)

    def test_restores_even_when_forward_raises(self, entry, batch):
        engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=3))
        before = {k: v.copy() for k, v in entry.model.state_dict().items()}
        calls = {"n": 0}

        def flaky(arr):
            calls["n"] += 1
            if calls["n"] == 2:  # the faulted pass
                raise RuntimeError("forward exploded")
            return forward_logits(entry.model, arr)

        with pytest.raises(RuntimeError, match="forward exploded"):
            engine.run_batch(flaky, batch)
        after = entry.model.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(after[key], value)


class TestDeterminism:
    def test_same_seed_same_fault_stream(self, entry, batch):
        """Two engines with one seed produce identical batch sequences."""

        def stream():
            engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=11))
            return [
                engine.run_batch(_forward(entry), batch)[1] for _ in range(4)
            ]

        assert stream() == stream()

    def test_different_seeds_diverge(self, entry, batch):
        def totals(seed):
            engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=seed))
            reports = [
                engine.run_batch(_forward(entry), batch)[1] for _ in range(4)
            ]
            return [r.flips for r in reports]

        assert totals(1) != totals(2)


class TestReports:
    def test_report_counts_are_consistent(self, entry, batch):
        engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=5))
        outputs, report = engine.run_batch(_forward(entry), batch)
        assert outputs.shape[0] == batch.shape[0]
        assert report.samples == batch.shape[0]
        assert 0 <= report.sdc_events <= report.samples
        if report.injected:
            assert report.flips > 0
        else:
            assert report.flips == 0 and report.sdc_events == 0

    def test_sdc_events_count_changed_predictions(self, entry, batch):
        engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=5))
        clean = forward_logits(entry.model, batch).argmax(axis=1)
        outputs, report = engine.run_batch(_forward(entry), batch)
        assert report.sdc_events == int(
            (outputs.argmax(axis=1) != clean).sum()
        )

    def test_metrics_aggregate_reports(self, entry, batch):
        engine = ChaosEngine(entry, ChaosConfig(ber=BER, seed=5))
        metrics = ServerMetrics()
        total = 0
        for _ in range(3):
            _, report = engine.run_batch(_forward(entry), batch)
            metrics.observe_chaos("lenet", report)
            total += report.sdc_events
        snapshot = metrics.chaos_snapshot("lenet")
        assert snapshot["batches"] == 3
        assert snapshot["samples"] == 3 * batch.shape[0]
        assert snapshot["sdc_events"] == total
        assert snapshot["sdc_rate"] == pytest.approx(
            total / (3 * batch.shape[0]), abs=1e-6
        )

    def test_bad_ber_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="ber"):
            ChaosConfig(ber=0.0)
        with pytest.raises(ConfigurationError, match="ber"):
            ChaosConfig(ber=1.5)
