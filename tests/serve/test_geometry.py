"""Serving geometry and startup warming.

Covers the two ROADMAP "Serve" items this PR closes: checkpoint-derived
input channel counts (grayscale models no longer masquerade as RGB) and
``ServeApp.preload`` compiling lanes/plans at startup instead of inside
the first unlucky request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.checkpoint import load_protected_auto, save_protected
from repro.eval.evaluator import forward_logits
from repro.models.lenet import build_lenet
from repro.runtime import RuntimeConfig
from repro.serve import ModelRegistry, ServeApp, ServeConfig

IMAGE_SIZE = 16


def _grayscale_meta() -> dict:
    return {
        "model": "lenet",
        "dataset": "synth10",
        "method": "none",
        "num_classes": 10,
        "scale": 0.25,
        "image_size": IMAGE_SIZE,
        "in_channels": 1,
        "seed": 0,
        "format": "Q15.16",
    }


@pytest.fixture(scope="module")
def grayscale_checkpoint(tmp_path_factory):
    model = build_lenet(
        num_classes=10, scale=0.25, seed=0, in_channels=1, image_size=IMAGE_SIZE
    )
    path = save_protected(
        tmp_path_factory.mktemp("gray") / "gray.npz", model, meta=_grayscale_meta()
    )
    return path, model


class TestGrayscaleGeometry:
    def test_load_protected_auto_rebuilds_single_channel(self, grayscale_checkpoint):
        path, original = grayscale_checkpoint
        model, meta = load_protected_auto(path)
        assert meta["in_channels"] == 1
        x = np.random.default_rng(0).standard_normal(
            (2, 1, IMAGE_SIZE, IMAGE_SIZE)
        ).astype(np.float32)
        np.testing.assert_array_equal(
            forward_logits(model, x), forward_logits(original, x)
        )

    def test_registry_reports_true_channel_count(self, grayscale_checkpoint):
        path, _ = grayscale_checkpoint
        registry = ModelRegistry()
        registry.register("gray", path)
        # Manifest peek (not resident) already reports 1 channel.
        assert registry.describe_spec("gray")["input_shape"] == [
            1,
            IMAGE_SIZE,
            IMAGE_SIZE,
        ]
        entry = registry.get("gray")
        assert entry.input_shape == (1, IMAGE_SIZE, IMAGE_SIZE)

    def test_grayscale_checkpoint_serves_end_to_end(self, grayscale_checkpoint):
        path, _ = grayscale_checkpoint
        registry = ModelRegistry(config=RuntimeConfig(enabled=True))
        registry.register("gray", path)
        app = ServeApp(registry, ServeConfig(max_batch=4, max_latency_ms=1.0))
        try:
            batch = np.random.default_rng(1).standard_normal(
                (3, 1, IMAGE_SIZE, IMAGE_SIZE)
            ).astype(np.float32)
            response = app.predict(batch, model="gray")
            assert len(response["predictions"]) == 3
            # An RGB-shaped request is rejected with the true geometry.
            with pytest.raises(Exception, match=r"\(1, 16, 16\)"):
                app.predict(
                    np.zeros((2, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32),
                    model="gray",
                )
        finally:
            app.close()

    def test_model_without_channel_hints_defaults_to_rgb(self, tmp_path):
        """Old checkpoints (no in_channels meta) derive from the model."""
        model = build_lenet(
            num_classes=10, scale=0.25, seed=0, image_size=IMAGE_SIZE
        )
        meta = _grayscale_meta()
        del meta["in_channels"]
        path = save_protected(tmp_path / "rgb.npz", model, meta=meta)
        registry = ModelRegistry()
        registry.register("rgb", path)
        assert registry.get("rgb").input_shape == (3, IMAGE_SIZE, IMAGE_SIZE)

    def test_conv_free_model_defaults_to_rgb(self):
        from repro.serve.registry import ServedModel
        from repro.quant.fixed_point import Q15_16

        mlp = nn.Sequential(nn.Flatten(), nn.Linear(12, 4, rng=0))
        entry = ServedModel(
            name="mlp",
            path="mlp.npz",
            model=mlp,
            meta={"image_size": 2},
            fmt=Q15_16,
        )
        assert entry.input_shape == (3, 2, 2)


class TestPreload:
    def test_preload_warms_models_and_lanes(self, grayscale_checkpoint):
        path, _ = grayscale_checkpoint
        registry = ModelRegistry(config=RuntimeConfig(enabled=True))
        registry.register("gray", path)
        app = ServeApp(registry, ServeConfig(max_batch=4, max_latency_ms=1.0))
        try:
            warmed = app.preload()
            assert warmed == ["gray"]
            assert registry.resident_names() == ["gray"]
            assert registry.get("gray").plan is not None  # compiled at startup
            assert app.health()["preloaded"] == ["gray"]
            loads_before = registry.loads
            batch = np.zeros((1, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
            app.predict(batch, model="gray")
            assert registry.loads == loads_before  # first request: no load
        finally:
            app.close()

    def test_preload_rotates_fleets_beyond_capacity(
        self, grayscale_checkpoint, tmp_path
    ):
        """Every checkpoint is warmed once even when the fleet exceeds
        capacity; LRU keeps the tail resident and /healthz reports the
        rotated-out rest."""
        path, _ = grayscale_checkpoint
        other = save_protected(
            tmp_path / "other.npz",
            build_lenet(
                num_classes=10,
                scale=0.25,
                seed=0,
                in_channels=1,
                image_size=IMAGE_SIZE,
            ),
            meta=_grayscale_meta(),
        )
        registry = ModelRegistry(capacity=1)
        registry.register("a", path)
        registry.register("b", other)
        app = ServeApp(registry, ServeConfig(max_batch=4, max_latency_ms=1.0))
        try:
            warmed = app.preload()
            assert warmed == ["a", "b"]  # the whole fleet, in order
            assert registry.resident_names() == ["b"]  # LRU kept the tail
            health = app.health()
            assert health["preloaded"] == ["a", "b"]
            assert health["preload_rotated"] == ["a"]
            # The rotated model still serves (reloaded on first request),
            # and the resident one serves without a load.
            loads_before = registry.loads
            batch = np.zeros((1, 1, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
            app.predict(batch, model="b")
            assert registry.loads == loads_before
            app.predict(batch, model="a")
            assert registry.loads == loads_before + 1
        finally:
            app.close()

    def test_preload_rotation_validates_broken_checkpoints_at_startup(
        self, grayscale_checkpoint, tmp_path
    ):
        """A checkpoint beyond capacity that cannot load fails preload
        (fail fast at startup) instead of failing its first request."""
        path, _ = grayscale_checkpoint
        broken = tmp_path / "broken.npz"
        broken.write_bytes(b"not a checkpoint")
        registry = ModelRegistry(capacity=1)
        registry.register("a", path)
        registry.register("z-broken", str(broken))
        app = ServeApp(registry, ServeConfig(max_batch=4, max_latency_ms=1.0))
        try:
            # np.load rejects the garbage archive; a ReproError would be
            # a (valid) friendlier wrapper — either way preload surfaces
            # the broken file instead of swallowing it.
            from repro.errors import ReproError

            with pytest.raises((ValueError, OSError, ReproError)):
                app.preload()
        finally:
            app.close()

    def test_health_reports_empty_preload_by_default(self, grayscale_checkpoint):
        path, _ = grayscale_checkpoint
        registry = ModelRegistry()
        registry.register("gray", path)
        app = ServeApp(registry)
        try:
            health = app.health()
            assert health["preloaded"] == []
            assert health["preload_rotated"] == []
        finally:
            app.close()
