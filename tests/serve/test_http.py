"""End-to-end HTTP serving: real checkpoints, real sockets, chaos mode."""

import numpy as np
import pytest

from repro.core import ProtectionConfig, protect_model, save_protected
from repro.errors import ConfigurationError
from repro.eval.evaluator import forward_logits
from repro.runtime import RuntimeConfig
from repro.serve import (
    ChaosConfig,
    ModelRegistry,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeConfig,
)

NUM_CLASSES = 10
IMAGE_SIZE = 16


def _meta(method: str) -> dict:
    return {
        "model": "lenet",
        "dataset": "synth10",
        "method": method,
        "num_classes": NUM_CLASSES,
        "scale": 1.0,
        "image_size": IMAGE_SIZE,
        "seed": 0,
        "format": "Q15.16",
    }


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory, trained_state, train_loader):
    """One protected and one unprotected checkpoint on disk."""
    from repro.models.registry import build_model

    root = tmp_path_factory.mktemp("serve-ckpt")
    paths = {}
    for method in ("clipact", "none"):
        model = build_model(
            "lenet",
            num_classes=NUM_CLASSES,
            scale=1.0,
            image_size=IMAGE_SIZE,
            seed=0,
        )
        model.load_state_dict(trained_state["state"])
        if method != "none":
            protect_model(model, train_loader, ProtectionConfig(method=method))
        paths[method] = save_protected(
            root / f"{method}.npz", model, meta=_meta(method)
        )
    return paths


@pytest.fixture()
def server(checkpoints):
    registry = ModelRegistry(capacity=2)
    registry.register("protected", checkpoints["clipact"])
    registry.register("plain", checkpoints["none"])
    app = ServeApp(registry, ServeConfig(max_batch=8, max_latency_ms=2.0))
    with ReproServer(app) as running:
        yield running


@pytest.fixture()
def client(server):
    client = ServeClient(server.url, timeout=30.0)
    client.wait_ready()
    return client


@pytest.fixture(scope="module")
def sample_batch(test_loader):
    inputs, _ = next(iter(test_loader))
    return inputs.data[:4].astype(np.float32)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health.status == "ok"
        assert health.models == ("plain", "protected")
        assert health.chaos_ber is None
        assert health.admission is not None
        assert health.admission["pending"] == 0
        assert health.workers == {"mode": "thread", "count": 1}
        assert health.slo is None  # no --slo-p99-ms configured

    def test_models_before_and_after_load(self, client, sample_batch):
        listing = client.models()
        assert {m.name for m in listing.models} == {"plain", "protected"}
        assert all(not m.resident for m in listing.models)
        # Geometry is reported even before a model is resident (manifest
        # peek), so clients can shape their first request correctly.
        assert all(
            m.input_shape == (3, IMAGE_SIZE, IMAGE_SIZE)
            for m in listing.models
        )
        client.predict(sample_batch, model="protected")
        listing = client.models()
        resident = {m.name: m for m in listing.models}
        assert resident["protected"].resident is True
        assert resident["protected"].input_shape == (3, IMAGE_SIZE, IMAGE_SIZE)
        assert resident["protected"].method == "clipact"

    def test_predict_matches_local_forward(self, client, server, sample_batch):
        response = client.predict(sample_batch, model="protected", return_logits=True)
        entry = server.app.registry.get("protected")
        local = forward_logits(entry.model, sample_batch)
        assert list(response.predictions) == local.argmax(axis=1).tolist()
        np.testing.assert_allclose(
            np.asarray(response.logits, dtype=np.float32), local, rtol=1e-5
        )

    def test_predict_single_sample_auto_batches(self, client, sample_batch):
        response = client.predict(sample_batch[0], model="plain")
        assert len(response.predictions) == 1

    def test_metrics_accumulate(self, client, sample_batch):
        client.predict(sample_batch, model="plain")
        client.predict(sample_batch, model="plain")
        metrics = client.metrics()
        predict = metrics["requests"]["by_endpoint"]["/v1/predict"]
        assert predict["count"] >= 2
        assert metrics["batches"]["samples_served"] >= 2 * len(sample_batch)
        assert metrics["latency_ms"]["count"] >= 2

    def test_metrics_prometheus_exposition(self, client, server, sample_batch):
        from urllib.request import urlopen

        client.predict(sample_batch, model="plain")
        with urlopen(f"{server.url}/metrics?format=prometheus") as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{endpoint="/v1/predict",status="200"}' in text
        assert "# TYPE repro_http_request_latency_ms histogram" in text
        assert "repro_http_request_latency_ms_count" in text
        # Unknown/absent format values fall back to the JSON snapshot.
        with urlopen(f"{server.url}/metrics?format=unknown") as response:
            assert response.headers["Content-Type"].startswith("application/json")

    def test_request_and_batch_spans_recorded(self, client, sample_batch):
        from repro.obs import configure_tracing, reset_tracing, trace_events

        configure_tracing(True)
        try:
            client.predict(sample_batch, model="plain")
            names = [record.name for record in trace_events()]
        finally:
            reset_tracing()
        assert "serve.request" in names
        assert "serve.batch" in names

    def test_errors_map_to_statuses(self, client, sample_batch):
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client.predict(sample_batch, model="nope")
        with pytest.raises(ConfigurationError, match="HTTP 400"):
            client.predict(np.zeros((2, 5), dtype=np.float32), model="plain")
        with pytest.raises(ConfigurationError, match="HTTP 400"):
            # Two models hosted: the request must name one.
            client.predict(sample_batch)
        with pytest.raises(ConfigurationError, match="HTTP 404"):
            client._request("/nothing-here")
        metrics = client.metrics()
        assert metrics["requests"]["errors"] >= 4


class TestChaosServing:
    @pytest.fixture()
    def chaos_server(self, checkpoints):
        registry = ModelRegistry(capacity=2)
        registry.register("protected", checkpoints["clipact"])
        app = ServeApp(
            registry,
            ServeConfig(
                max_batch=8,
                max_latency_ms=1.0,
                chaos=ChaosConfig(ber=5e-5, seed=7),
            ),
        )
        with ReproServer(app) as running:
            yield running

    def test_chaos_counters_surface_in_metrics(self, chaos_server, sample_batch):
        client = ServeClient(chaos_server.url, timeout=30.0)
        client.wait_ready()
        for _ in range(4):
            client.predict(sample_batch, model="protected")
        chaos = client.metrics()["chaos"]["protected"]
        assert chaos["batches"] >= 4
        assert chaos["injected_batches"] >= 1
        assert chaos["flips"] > 0
        assert 0.0 <= chaos["sdc_rate"] <= 1.0

    def test_chaos_leaves_parameters_clean_between_requests(
        self, chaos_server, sample_batch
    ):
        client = ServeClient(chaos_server.url, timeout=30.0)
        client.wait_ready()
        client.predict(sample_batch, model="protected")
        entry = chaos_server.app.registry.get("protected")
        with entry.infer_lock:
            before = {k: v.copy() for k, v in entry.model.state_dict().items()}
        for _ in range(3):
            client.predict(sample_batch, model="protected")
        with entry.infer_lock:
            after = entry.model.state_dict()
            for key, value in before.items():
                np.testing.assert_array_equal(after[key], value)


class TestEvictionOverHTTP:
    def test_capacity_one_flips_between_models(self, checkpoints, sample_batch):
        registry = ModelRegistry(capacity=1)
        registry.register("protected", checkpoints["clipact"])
        registry.register("plain", checkpoints["none"])
        app = ServeApp(registry, ServeConfig(max_batch=8, max_latency_ms=1.0))
        with ReproServer(app) as running:
            client = ServeClient(running.url, timeout=30.0)
            client.wait_ready()
            for _ in range(2):
                client.predict(sample_batch, model="protected")
                client.predict(sample_batch, model="plain")
            assert registry.evictions >= 3
            assert len(registry.resident_names()) == 1
            # Lanes reconcile with residency: evicted models must not
            # accumulate stale batchers (and their worker threads).
            assert list(app._lanes) == ["plain"]


class TestRuntimeServing:
    """The compiled-runtime fast path: same predictions, chaos-compatible."""

    def _app(self, checkpoints, runtime, chaos=None):
        registry = ModelRegistry(
            capacity=2, config=RuntimeConfig(enabled=runtime)
        )
        registry.register("protected", checkpoints["clipact"])
        config = ServeConfig(max_batch=8, max_latency_ms=0.0, chaos=chaos)
        return ServeApp(registry, config)

    def test_registry_compiles_plan_once(self, checkpoints):
        registry = ModelRegistry(capacity=2, config=RuntimeConfig(enabled=True))
        registry.register("protected", checkpoints["clipact"])
        entry = registry.get("protected")
        assert entry.plan is not None
        assert registry.get("protected").plan is entry.plan  # cached, not rebuilt
        assert entry.describe()["runtime"] is True

    def test_runtime_predictions_bit_match_module_path(
        self, checkpoints, sample_batch
    ):
        apps = [self._app(checkpoints, runtime) for runtime in (False, True)]
        try:
            logits = [
                np.asarray(
                    app.predict(sample_batch, model="protected", return_logits=True)[
                        "logits"
                    ]
                )
                for app in apps
            ]
        finally:
            for app in apps:
                app.close()
        np.testing.assert_array_equal(logits[0], logits[1])

    def test_runtime_chaos_stream_matches_module_path(
        self, checkpoints, sample_batch
    ):
        snapshots = []
        for runtime in (False, True):
            app = self._app(
                checkpoints, runtime, chaos=ChaosConfig(ber=3e-4, seed=9)
            )
            try:
                for _ in range(4):
                    app.predict(sample_batch, model="protected")
                snapshots.append(app.metrics.snapshot()["chaos"]["protected"])
            finally:
                app.close()
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["injected_batches"] >= 1

    def test_health_reports_runtime(self, checkpoints):
        app = self._app(checkpoints, runtime=True)
        try:
            assert app.health()["runtime"] is True
        finally:
            app.close()
