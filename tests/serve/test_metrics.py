"""ServerMetrics: histogram semantics and counter aggregation."""

from repro.serve import Histogram, ServerMetrics
from repro.serve.metrics import ChaosBatchReport


class TestHistogram:
    def test_buckets_are_cumulative_le_counts(self):
        histogram = Histogram((1.0, 5.0, 10.0, float("inf")))
        for value in (0.5, 0.7, 3.0, 7.0, 100.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # Prometheus le semantics: each bucket includes everything below.
        assert snapshot["buckets"] == {
            "le_1": 2,
            "le_5": 3,
            "le_10": 4,
            "le_+Inf": 5,
        }
        assert snapshot["count"] == 5
        assert snapshot["sum"] == 111.2
        assert snapshot["mean"] == 22.24

    def test_empty_histogram(self):
        snapshot = Histogram((1.0, float("inf"))).snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] == 0.0
        assert snapshot["buckets"] == {"le_1": 0, "le_+Inf": 0}


class TestServerMetrics:
    def test_request_counters_split_by_endpoint_and_status(self):
        metrics = ServerMetrics()
        metrics.observe_request("/predict", 200, 0.002)
        metrics.observe_request("/predict", 400, 0.001)
        metrics.observe_request("/healthz", 200, 0.0005)
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["total"] == 3
        assert snapshot["requests"]["errors"] == 1
        predict = snapshot["requests"]["by_endpoint"]["/predict"]
        assert predict["count"] == 2
        assert predict["by_status"] == {"200": 1, "400": 1}
        assert snapshot["latency_ms"]["count"] == 3

    def test_batch_and_chaos_sections(self):
        metrics = ServerMetrics()
        metrics.observe_batch(4)
        metrics.observe_batch(16)
        metrics.observe_chaos(
            "m", ChaosBatchReport(samples=4, flips=2, injected=True, sdc_events=1)
        )
        metrics.observe_chaos(
            "m", ChaosBatchReport(samples=4, flips=0, injected=False, sdc_events=0)
        )
        snapshot = metrics.snapshot()
        assert snapshot["batches"]["samples_served"] == 20
        chaos = snapshot["chaos"]["m"]
        assert chaos["batches"] == 2
        assert chaos["injected_batches"] == 1
        assert chaos["flips"] == 2
        assert chaos["sdc_rate"] == 0.125
        assert metrics.chaos_snapshot("never-injected")["batches"] == 0
