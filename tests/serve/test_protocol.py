"""The /v1 protocol: typed round-trips and the legacy-alias guarantee.

Two contracts under test.  First, every protocol dataclass survives
``to_payload`` → ``from_payload`` unchanged, and ``dump_payload`` emits
deterministic, exact-float JSON.  Second — the PR's acceptance bar —
the deprecated unversioned paths return **byte-identical** payload
bodies to their ``/v1`` successors, distinguished only by the
``Deprecation``/``Link`` headers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.checkpoint import save_protected
from repro.errors import ConfigurationError
from repro.models.lenet import build_lenet
from repro.serve import ModelRegistry, ServeApp, ServeConfig
from repro.serve.protocol import (
    DEPRECATION_HEADERS,
    LEGACY_ALIASES,
    ErrorBody,
    HealthReport,
    ModelInfo,
    ModelList,
    PredictRequest,
    PredictResponse,
    dump_payload,
)

IMAGE_SIZE = 16


class TestPredictRequest:
    def test_round_trip(self):
        inputs = np.arange(2 * 3 * 4 * 4, dtype=np.float32).reshape(2, 3, 4, 4)
        request = PredictRequest(inputs=inputs, model="m", return_logits=True)
        rebuilt = PredictRequest.from_payload(request.to_payload())
        np.testing.assert_array_equal(rebuilt.inputs, inputs)
        assert rebuilt.model == "m"
        assert rebuilt.return_logits is True

    def test_defaults_stay_out_of_the_wire_format(self):
        request = PredictRequest(inputs=np.zeros((1, 1, 2, 2), dtype=np.float32))
        payload = request.to_payload()
        assert set(payload) == {"inputs"}  # model/return_logits elided

    def test_missing_inputs_rejected(self):
        with pytest.raises(ConfigurationError, match='missing "inputs"'):
            PredictRequest.from_payload({"model": "m"})

    def test_non_numeric_inputs_rejected(self):
        with pytest.raises(ConfigurationError, match="numeric array"):
            PredictRequest.from_payload({"inputs": [["a", "b"]]})

    def test_non_object_body_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            PredictRequest.from_payload([1, 2, 3])


class TestPredictResponse:
    def test_from_result_argmaxes(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]], dtype=np.float32)
        response = PredictResponse.from_result("m", logits, return_logits=True)
        assert response.predictions == (1, 0)
        assert response.logits is not None
        rebuilt = PredictResponse.from_payload(response.to_payload())
        assert rebuilt == response

    def test_logits_elided_unless_requested(self):
        logits = np.zeros((1, 3), dtype=np.float32)
        response = PredictResponse.from_result("m", logits, return_logits=False)
        assert response.logits is None
        assert "logits" not in response.to_payload()


class TestModelAndHealthMessages:
    def test_model_list_round_trip(self):
        info = ModelInfo(
            name="a",
            path="a.npz",
            model="lenet",
            dataset="synth10",
            method="clipact",
            num_classes=10,
            input_shape=(3, 16, 16),
            clean_accuracy=0.93,
            resident=True,
            format="Q15.16",
            runtime=True,
        )
        listing = ModelList(
            models=(info,), capacity=2, loads=1, evictions=0, chaos=False
        )
        assert ModelList.from_payload(listing.to_payload()) == listing

    def test_health_report_round_trip(self):
        report = HealthReport(
            status="ok",
            uptime_seconds=1.25,
            models=("a", "b"),
            resident=("a",),
            preloaded=(),
            preload_rotated=(),
            chaos_ber=1e-5,
            runtime=True,
            admission={"pending": 0},
            workers={"mode": "thread", "count": 1},
            slo=None,
        )
        assert HealthReport.from_payload(report.to_payload()) == report

    def test_error_body_carries_retry_hint_only_when_set(self):
        assert ErrorBody("boom").to_payload() == {"error": "boom"}
        shed = ErrorBody("full", retry_after_s=0.25).to_payload()
        assert shed == {"error": "full", "retry_after_s": 0.25}


class TestEncoding:
    def test_dump_payload_is_deterministic_and_compact(self):
        payload = {"b": [1.5, 2.0], "a": "x"}
        first, second = dump_payload(payload), dump_payload(dict(payload))
        assert first == second
        assert b" " not in first  # compact separators

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1e-30, 1.0000000000000002, -3.141592653589793]
        decoded = json.loads(dump_payload({"v": values}).decode("utf-8"))
        assert decoded["v"] == values  # bit-for-bit, not approximately

    def test_nan_fails_loudly(self):
        with pytest.raises(ValueError):
            dump_payload({"v": float("nan")})


@pytest.fixture(scope="module")
def app(tmp_path_factory):
    model = build_lenet(
        num_classes=10, scale=0.25, seed=0, image_size=IMAGE_SIZE
    )
    path = save_protected(
        tmp_path_factory.mktemp("proto") / "m.npz",
        model,
        meta={
            "model": "lenet",
            "dataset": "synth10",
            "method": "none",
            "num_classes": 10,
            "scale": 0.25,
            "image_size": IMAGE_SIZE,
            "seed": 0,
            "format": "Q15.16",
        },
    )
    registry = ModelRegistry(capacity=2)
    registry.register("m", path)
    app = ServeApp(registry, ServeConfig(max_batch=4, max_latency_ms=0.0))
    yield app
    app.close()


class TestLegacyAliases:
    """/predict etc. must be byte-identical shims over /v1."""

    def test_every_legacy_path_has_a_v1_successor(self):
        for legacy, canonical in LEGACY_ALIASES.items():
            assert canonical == f"/v1{legacy}"

    def test_get_aliases_return_identical_bytes(self, app):
        old = app.router.handle("GET", "/models", None)
        new = app.router.handle("GET", "/v1/models", None)
        assert old.status == new.status == 200
        assert old.body == new.body

    def test_volatile_get_aliases_return_identical_shapes(self, app):
        # /healthz (uptime ticks) and /metrics (the first call increments
        # the counters the second reports) can't be byte-compared across
        # sequential requests; assert the stable structure instead.
        for legacy in ("/healthz", "/metrics"):
            old = app.router.handle("GET", legacy, None)
            new = app.router.handle("GET", LEGACY_ALIASES[legacy], None)
            assert old.status == new.status == 200
            old_body = json.loads(old.body.decode("utf-8"))
            new_body = json.loads(new.body.decode("utf-8"))
            assert old_body.keys() == new_body.keys()
            if legacy == "/healthz":
                old_body.pop("uptime_seconds"), new_body.pop("uptime_seconds")
                assert old_body == new_body

    def test_predict_alias_returns_identical_bytes(self, app):
        inputs = np.zeros((2, 3, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
        body = dump_payload(
            PredictRequest(
                inputs=inputs, model="m", return_logits=True
            ).to_payload()
        )
        old = app.router.handle("POST", "/predict", body)
        new = app.router.handle("POST", "/v1/predict", body)
        assert old.status == new.status == 200
        assert old.body == new.body

    def test_alias_carries_deprecation_headers_canonical_does_not(self, app):
        old = app.router.handle("GET", "/models", None)
        new = app.router.handle("GET", "/v1/models", None)
        assert old.headers == tuple(DEPRECATION_HEADERS("/v1/models"))
        assert ("Deprecation", "true") in old.headers
        assert any(
            name == "Link" and 'rel="successor-version"' in value
            for name, value in old.headers
        )
        assert new.headers == ()

    def test_alias_metrics_count_under_the_canonical_endpoint(self, app):
        app.router.handle("GET", "/models", None)
        by_endpoint = app.metrics.snapshot()["requests"]["by_endpoint"]
        assert "/v1/models" in by_endpoint
        assert "/models" not in by_endpoint

    def test_unknown_path_is_404(self, app):
        result = app.router.handle("GET", "/v2/predict", None)
        assert result.status == 404
        assert b"no route" in result.body
