"""ModelRegistry: LRU residency, single-flight loads, concurrent races.

Checkpoint IO is stubbed out (monkeypatched ``load_protected_auto``) so
these tests exercise the caching/locking machinery in microseconds; the
HTTP tests cover real checkpoint loads end to end.
"""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.serve import ModelRegistry
from repro.serve import registry as registry_module


class _FakeLoader:
    """Stand-in for load_protected_auto with call counting and delay."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def __call__(self, path):
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.calls.append(str(path))
        return object(), {"model": "lenet", "image_size": 16}


@pytest.fixture
def fake_loader(monkeypatch):
    loader = _FakeLoader()
    monkeypatch.setattr(registry_module, "load_protected_auto", loader)
    return loader


class TestRegistration:
    def test_register_and_names(self, fake_loader):
        registry = ModelRegistry(capacity=2)
        registry.register("b", "b.npz")
        registry.register("a", "a.npz")
        assert registry.names() == ["a", "b"]
        assert "a" in registry and "missing" not in registry
        assert len(registry) == 2

    def test_duplicate_name_rejected(self, fake_loader):
        registry = ModelRegistry()
        registry.register("a", "a.npz")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", "other.npz")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ModelRegistry().register("", "a.npz")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            ModelRegistry(capacity=0)

    def test_unknown_model_lists_available(self, fake_loader):
        registry = ModelRegistry()
        registry.register("a", "a.npz")
        with pytest.raises(ConfigurationError, match="unknown model 'z'.*a"):
            registry.get("z")


class TestResidency:
    def test_load_once_then_hit(self, fake_loader):
        registry = ModelRegistry(capacity=2)
        registry.register("a", "a.npz")
        first = registry.get("a")
        assert registry.get("a") is first
        assert fake_loader.calls == ["a.npz"]
        assert registry.loads == 1 and registry.hits == 1

    def test_lru_evicts_least_recently_used(self, fake_loader):
        registry = ModelRegistry(capacity=2)
        for name in ("a", "b", "c"):
            registry.register(name, f"{name}.npz")
        registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh a; b is now LRU
        registry.get("c")  # evicts b
        assert registry.resident_names() == ["a", "c"]
        assert registry.evictions == 1
        registry.get("b")  # reload after eviction
        assert fake_loader.calls.count("b.npz") == 2

    def test_explicit_evict(self, fake_loader):
        registry = ModelRegistry(capacity=2)
        registry.register("a", "a.npz")
        registry.get("a")
        assert registry.evict("a") is True
        assert registry.evict("a") is False
        assert registry.resident_names() == []

    def test_served_model_describes_itself(self, fake_loader):
        registry = ModelRegistry()
        registry.register("a", "a.npz")
        entry = registry.get("a")
        assert entry.input_shape == (3, 16, 16)
        description = entry.describe()
        assert description["name"] == "a"
        assert description["input_shape"] == [3, 16, 16]

    def test_describe_spec_peeks_without_loading(self, fake_loader, monkeypatch):
        peeks: list[str] = []

        def fake_peek(path):
            peeks.append(str(path))
            return {"model": "lenet", "image_size": 32, "method": "fitact"}

        monkeypatch.setattr(registry_module, "read_checkpoint_meta", fake_peek)
        registry = ModelRegistry()
        registry.register("a", "a.npz")
        spec = registry.describe_spec("a")
        assert spec["input_shape"] == [3, 32, 32]
        assert spec["method"] == "fitact"
        assert registry.resident_names() == []  # no load happened
        assert fake_loader.calls == []
        registry.describe_spec("a")
        assert peeks == ["a.npz"]  # manifest peek is cached

    def test_describe_spec_degrades_on_unreadable_manifest(
        self, fake_loader, monkeypatch
    ):
        def broken_peek(path):
            raise OSError("no such file")

        monkeypatch.setattr(registry_module, "read_checkpoint_meta", broken_peek)
        registry = ModelRegistry()
        registry.register("a", "a.npz")
        spec = registry.describe_spec("a")
        assert spec["name"] == "a"
        assert spec["input_shape"] is None


class TestConcurrency:
    def test_concurrent_first_loads_are_single_flighted(self, monkeypatch):
        loader = _FakeLoader(delay=0.05)
        monkeypatch.setattr(registry_module, "load_protected_auto", loader)
        registry = ModelRegistry(capacity=2)
        registry.register("a", "a.npz")
        entries = []
        threads = [
            threading.Thread(target=lambda: entries.append(registry.get("a")))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(loader.calls) == 1
        assert all(entry is entries[0] for entry in entries)

    def test_load_evict_race_stays_consistent(self, fake_loader):
        """Hammer a capacity-1 registry from many threads on two names.

        Every get() must return an entry for the requested name, the
        resident set must never exceed capacity, and the bookkeeping
        must balance (every miss is a load, every load beyond capacity
        an eviction).
        """
        registry = ModelRegistry(capacity=1)
        registry.register("a", "a.npz")
        registry.register("b", "b.npz")
        errors: list[Exception] = []
        rounds = 60

        def hammer(name: str) -> None:
            for _ in range(rounds):
                try:
                    entry = registry.get(name)
                    assert entry.name == name
                except Exception as error:  # noqa: BLE001 — collect, assert later
                    errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(name,))
            for name in ("a", "b", "a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(registry.resident_names()) <= 1
        total_gets = rounds * 4
        assert registry.hits + registry.loads == total_gets
        assert registry.loads == len(fake_loader.calls)
        assert registry.evictions >= registry.loads - registry.capacity

    def test_infer_locks_are_per_model(self, fake_loader):
        registry = ModelRegistry(capacity=2)
        registry.register("a", "a.npz")
        registry.register("b", "b.npz")
        lock_a = registry.get("a").infer_lock
        lock_b = registry.get("b").infer_lock
        assert lock_a is not lock_b
        with lock_a:
            acquired = lock_b.acquire(timeout=1)
            assert acquired
            lock_b.release()
