"""Multi-process plan lanes: correctness, chaos isolation, fault tolerance.

The pool ships ``(name, path, batch)`` to worker processes that load and
compile checkpoints themselves; the parent holds no model.  These tests
assert the workers' logits bit-match the in-process forward, chaos runs
with exact flip/restore inside the worker, and — the PR's bugfix — a
killed worker lane restarts in place without dropping the request that
was riding on it.
"""

from __future__ import annotations

import os
import pickle
import signal

import numpy as np
import pytest

from repro.core.checkpoint import load_protected_auto, save_protected
from repro.errors import ConfigurationError
from repro.eval.evaluator import forward_logits
from repro.runtime import RuntimeConfig
from repro.serve import (
    ChaosConfig,
    ModelRegistry,
    ReproServer,
    ServeApp,
    ServeClient,
    ServeConfig,
    WorkerPool,
)

IMAGE_SIZE = 16


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    from repro.models.lenet import build_lenet

    model = build_lenet(
        num_classes=10, scale=0.25, seed=0, image_size=IMAGE_SIZE
    )
    return save_protected(
        tmp_path_factory.mktemp("workers") / "m.npz",
        model,
        meta={
            "model": "lenet",
            "dataset": "synth10",
            "method": "none",
            "num_classes": 10,
            "scale": 0.25,
            "image_size": IMAGE_SIZE,
            "seed": 0,
            "format": "Q15.16",
        },
    )


@pytest.fixture(scope="module")
def batch():
    return (
        np.random.default_rng(3)
        .standard_normal((4, 3, IMAGE_SIZE, IMAGE_SIZE))
        .astype(np.float32)
    )


class TestWorkerPool:
    @pytest.fixture()
    def pool(self):
        pool = WorkerPool(workers=2, mp_start="fork")
        yield pool
        pool.close(drain=True, timeout=10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ConfigurationError, match="mp_start"):
            WorkerPool(workers=1, mp_start="thread")

    def test_worker_logits_bit_match_local_forward(
        self, pool, checkpoint, batch
    ):
        model, _ = load_protected_auto(checkpoint)
        local = forward_logits(model, batch)
        outputs, report = pool.run_batch("m", str(checkpoint), batch, chaos=False)
        np.testing.assert_array_equal(outputs, local)
        assert report is None  # clean forward: no chaos report

    def test_warm_then_report(self, pool, checkpoint):
        pool.warm("m", str(checkpoint))
        report = pool.report()
        assert report["mode"] == "process"
        assert report["count"] == 2
        assert report["alive"] == 2
        assert report["restarts"] == 0

    def test_dead_lane_restarts_without_dropping_the_batch(
        self, pool, checkpoint, batch
    ):
        pool.warm("m", str(checkpoint))
        restarts_seen = []
        pool._on_restart = lambda: restarts_seen.append(1)
        for lane in pool._lanes:
            os.kill(lane.process.pid, signal.SIGKILL)
        # Both lanes are corpses; the next batches must still be served
        # (restart-in-place + one resubmission each).  Restarts are lazy
        # — a dead lane revives when a batch rides it — so two batches
        # bring the whole fleet back.
        for _ in range(2):
            outputs, _ = pool.run_batch(
                "m", str(checkpoint), batch, chaos=False
            )
            assert outputs.shape == (len(batch), 10)
        assert pool.restarts == 2
        assert len(restarts_seen) == 2
        assert pool.report()["alive"] == 2

    def test_unknown_checkpoint_error_propagates_typed(self, pool, batch):
        with pytest.raises(Exception, match="nope.npz"):
            pool.run_batch("nope", "nope.npz", batch, chaos=False)
        # The lane survives the error and keeps serving.
        assert pool.report()["alive"] == 2

    def test_closed_pool_rejects_work(self, checkpoint, batch):
        pool = WorkerPool(workers=1, mp_start="fork")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            pool.run_batch("m", str(checkpoint), batch)

    def test_refuses_to_pickle(self):
        pool = WorkerPool(workers=1, mp_start="fork")
        try:
            with pytest.raises(TypeError, match="cannot be pickled"):
                pickle.dumps(pool)
            with pytest.raises(TypeError, match="cannot be pickled"):
                pickle.dumps(pool._lanes[0])
        finally:
            pool.close()


class TestWorkerChaos:
    def test_chaos_runs_inside_workers_with_reports(self, checkpoint, batch):
        pool = WorkerPool(
            workers=2, mp_start="fork", chaos=ChaosConfig(ber=3e-4, seed=9)
        )
        try:
            reports = []
            for _ in range(4):
                outputs, report = pool.run_batch(
                    "m", str(checkpoint), batch, chaos=True
                )
                assert outputs.shape == (len(batch), 10)
                assert report is not None
                reports.append(report)
            assert sum(r.flips for r in reports) > 0
        finally:
            pool.close()

    def test_lanes_get_distinct_chaos_seeds(self):
        pool = WorkerPool(
            workers=2, mp_start="fork", chaos=ChaosConfig(ber=1e-4, seed=5)
        )
        try:
            seeds = {pool._lane_chaos(i).seed for i in range(2)}
            assert len(seeds) == 2
            assert 5 not in seeds  # derived, not the raw campaign seed
        finally:
            pool.close()


class TestProcessModeServing:
    @pytest.mark.parametrize("mp_start", ["fork", "spawn"])
    def test_end_to_end_over_http(self, checkpoint, batch, mp_start):
        registry = ModelRegistry(
            capacity=2, config=RuntimeConfig(enabled=True)
        )
        registry.register("m", checkpoint)
        app = ServeApp(
            registry,
            ServeConfig(
                max_batch=8, max_latency_ms=2.0, workers=2, mp_start=mp_start
            ),
        )
        app.preload()
        with ReproServer(app) as server:
            client = ServeClient(server.url, timeout=60.0)
            health = client.wait_ready()
            assert health.workers["mode"] == "process"
            assert health.workers["count"] == 2
            assert health.workers["alive"] == 2
            assert health.workers["mp_start"] == mp_start
            response = client.predict(batch, model="m", return_logits=True)
            model, _ = load_protected_auto(checkpoint)
            local = forward_logits(model, batch)
            assert list(response.predictions) == local.argmax(axis=1).tolist()
            np.testing.assert_array_equal(
                np.asarray(response.logits, dtype=np.float32), local
            )

    def test_worker_death_served_through_and_counted(self, checkpoint, batch):
        registry = ModelRegistry(capacity=2)
        registry.register("m", checkpoint)
        app = ServeApp(
            registry,
            ServeConfig(max_batch=8, max_latency_ms=2.0, workers=1, mp_start="fork"),
        )
        app.preload()
        with ReproServer(app) as server:
            client = ServeClient(server.url, timeout=60.0)
            client.wait_ready()
            client.predict(batch, model="m")
            pool = app._pool
            assert pool is not None
            os.kill(pool._lanes[0].process.pid, signal.SIGKILL)
            # The very next request rides the dead lane, triggers the
            # restart-and-resubmit path, and still succeeds.
            response = client.predict(batch, model="m")
            assert len(response.predictions) == len(batch)
            metrics = client.metrics()
            assert metrics["admission"]["worker_restarts"] >= 1
            assert client.healthz().workers["restarts"] >= 1

    def test_parent_process_loads_no_models(self, checkpoint, batch):
        registry = ModelRegistry(capacity=2)
        registry.register("m", checkpoint)
        app = ServeApp(
            registry,
            ServeConfig(max_batch=8, max_latency_ms=2.0, workers=1, mp_start="fork"),
        )
        try:
            payload = app.predict(batch, model="m")
            assert len(payload["predictions"]) == len(batch)
            assert registry.loads == 0  # inference happened off-process
            assert registry.resident_names() == []
        finally:
            app.close()
