"""The vulnerability atlas: aggregation semantics and rendering."""

import json

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.eval.reporting import format_atlas
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector, TrialOutcome
from repro.quant import quantize_module
from repro.store import CampaignStore, build_atlas

SPEC = BitFlipFaultModel.exact(2)


def _model():
    return quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )


def make_campaign(trials=4):
    model = _model()
    return FaultCampaign(
        FaultInjector(model), lambda: 1.0, trials=trials, seed=0
    )


@pytest.fixture()
def handmade_store(tmp_path):
    """A store with a hand-written journal so expectations are exact.

    Layer table comes from the tiny Sequential: 0.weight, 0.bias,
    2.weight, 2.bias.  Trials:

    - t0: hits layer 0 bits 3+17, accuracy 0.90 (SDC at baseline 1.0)
    - t1: hits layers 0 and 2 bit 31, accuracy 0.50 (SDC)
    - t2: hits layer 2 bit 3, accuracy 1.00 (not an SDC)
    - t3: no flips (Binomial drew zero), accuracy 1.00
    """
    store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
    key = store.open_config(SPEC, tag="a")
    store.record(key, TrialOutcome(0, 0.90, 2), [(0, 3), (0, 17)])
    store.record(key, TrialOutcome(1, 0.50, 2), [(0, 31), (2, 31)])
    store.record(key, TrialOutcome(2, 1.00, 1), [(2, 3)])
    store.record(key, TrialOutcome(3, 1.00, 0), [])
    yield store
    store.close()


class TestBuildAtlas:
    def test_layer_rows(self, handmade_store):
        atlas = build_atlas(handmade_store, baseline=1.0, tolerance=0.01)
        assert atlas["trials"] == 4
        assert atlas["trials_with_faults"] == 3
        assert atlas["flips"] == 5
        by_layer = {row["layer"]: row for row in atlas["layers"]}
        assert set(by_layer) == {"0.weight", "2.weight"}
        first = by_layer["0.weight"]
        assert first["trials"] == 2
        assert first["flips"] == 3
        assert first["sdc"] == 2
        assert first["sdc_rate"] == 1.0
        assert first["mean_accuracy"] == pytest.approx(0.70)
        assert first["min_accuracy"] == 0.50
        second = by_layer["2.weight"]
        assert second["trials"] == 2
        assert second["sdc"] == 1
        assert second["mean_accuracy"] == pytest.approx(0.75)
        assert atlas["layers_unhit"] == 2  # the two bias tensors

    def test_bit_rows(self, handmade_store):
        atlas = build_atlas(handmade_store, baseline=1.0)
        by_bit = {row["bit"]: row for row in atlas["bits"]}
        assert set(by_bit) == {3, 17, 31}
        # Bit 3 appears in t0 (SDC) and t2 (clean); trial-level
        # attribution counts each trial once even with 2 sites.
        assert by_bit[3]["trials"] == 2
        assert by_bit[3]["sdc"] == 1
        assert by_bit[31]["trials"] == 1
        assert by_bit[31]["sdc"] == 1
        assert by_bit[17]["flips"] == 1
        low, high = by_bit[31]["sdc_ci"]
        assert 0.0 <= low <= 1.0 / 1 <= high <= 1.0

    def test_multi_site_trial_counts_once_per_group(self, handmade_store):
        """t0 hit layer 0 twice: 2 flips, but only 1 trial attribution."""
        atlas = build_atlas(handmade_store, baseline=1.0)
        row = next(r for r in atlas["layers"] if r["layer"] == "0.weight")
        assert row["flips"] == 3  # 2 (t0) + 1 (t1)
        assert row["trials"] == 2  # t0, t1

    def test_baseline_from_meta(self, tmp_path):
        store = CampaignStore.for_campaign(
            tmp_path / "s", make_campaign(), meta={"clean_accuracy": 1.0}
        )
        key = store.open_config(SPEC)
        store.record(key, TrialOutcome(0, 0.5, 1), [(0, 31)])
        atlas = build_atlas(store)
        assert atlas["baseline"] == 1.0
        assert atlas["layers"][0]["sdc"] == 1
        store.close()

    def test_missing_baseline_is_an_error(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
        with pytest.raises(ConfigurationError, match="baseline"):
            build_atlas(store)
        store.close()

    def test_atlas_is_json_ready(self, handmade_store):
        atlas = build_atlas(handmade_store, baseline=1.0)
        roundtrip = json.loads(json.dumps(atlas))
        assert roundtrip["trials"] == 4


class TestFormatAtlas:
    def test_markdown_contains_both_tables(self, handmade_store):
        text = format_atlas(build_atlas(handmade_store, baseline=1.0))
        assert "### By layer" in text
        assert "### By bit position" in text
        assert "0.weight" in text
        assert "| 31 " in text or "| 31" in text
        assert "2 of 4 layers saw no faults" in text

    def test_layers_ranked_most_vulnerable_first(self, handmade_store):
        text = format_atlas(build_atlas(handmade_store, baseline=1.0))
        assert text.index("0.weight") < text.index("2.weight")

    def test_empty_journal_renders_placeholders(self, tmp_path):
        store = CampaignStore.for_campaign(
            tmp_path / "s", make_campaign(), meta={"clean_accuracy": 1.0}
        )
        text = format_atlas(build_atlas(store))
        assert "(no fault sites journaled yet)" in text
        store.close()


class TestOrderIndependence:
    def test_atlas_is_identical_regardless_of_journal_append_order(
        self, tmp_path
    ):
        """A merged shard store journals trials source-major (0,2,1,3…)
        while a straight run journals 0,1,2,3; float reductions are
        order-sensitive, so the atlas must re-sort by trial index before
        aggregating or the byte-identity contract flakes by one ulp."""
        # Accuracies chosen so naive left-to-right summation differs
        # across orders in the last bit.
        values = {0: 0.1, 1: 0.2, 2: 0.3, 3: 0.30000000000000004}
        stores = {}
        for name, order in (("straight", [0, 1, 2, 3]), ("merged", [0, 2, 1, 3])):
            store = CampaignStore.for_campaign(tmp_path / name, make_campaign())
            key = store.open_config(SPEC)
            for trial in order:
                store.record(
                    key, TrialOutcome(trial, values[trial], 1), [(0, 5)]
                )
            stores[name] = store
        assert list(stores["merged"].records(key)) == [0, 1, 2, 3]
        straight = json.dumps(build_atlas(stores["straight"], baseline=1.0))
        merged = json.dumps(build_atlas(stores["merged"], baseline=1.0))
        assert straight == merged
        for store in stores.values():
            store.close()


class TestRealCampaignAtlas:
    def test_atlas_rows_reconcile_with_the_journal(self, tmp_path):
        """On a real campaign, every journaled flip lands in exactly one
        layer row and one bit row."""
        model = _model()

        def health():
            total, bad = 0, 0
            for param in model.parameters():
                total += param.size
                bad += int((np.abs(param.data) > 100).sum())
            return 1.0 - bad / total

        campaign = FaultCampaign(
            FaultInjector(model), health, trials=10, seed=7
        )
        with CampaignStore.for_campaign(
            tmp_path / "s", campaign, meta={"clean_accuracy": 1.0}
        ) as store:
            campaign.run(BitFlipFaultModel.at_rate(5e-3), tag="real", store=store)
            atlas = build_atlas(store)
            journal_flips = sum(
                len(record.sites)
                for record in store.records(store.config_keys()[0]).values()
            )
            assert atlas["flips"] == journal_flips
            assert sum(row["flips"] for row in atlas["layers"]) == journal_flips
            assert sum(row["flips"] for row in atlas["bits"]) == journal_flips


class TestDensityNormalisation:
    """Fault-space-normalised SDC densities (stores journaling geometry)."""

    def test_layer_density_divides_by_layer_fault_space(self, handmade_store):
        atlas = build_atlas(handmade_store, baseline=1.0, tolerance=0.01)
        by_layer = {row["layer"]: row for row in atlas["layers"]}
        # 0.weight: 4x8 words at 32 bits/word.
        first = by_layer["0.weight"]
        assert first["fault_space_bits"] == 32 * 32
        assert first["sdc_density"] == pytest.approx(1.0 / (32 * 32))
        second = by_layer["2.weight"]
        assert second["fault_space_bits"] == 16 * 32
        assert second["sdc_density"] == pytest.approx(0.5 / (16 * 32))

    def test_bit_density_divides_by_word_population(self, handmade_store):
        atlas = build_atlas(handmade_store, baseline=1.0)
        words = 32 + 8 + 16 + 2  # every word exposes each bit position once
        by_bit = {row["bit"]: row for row in atlas["bits"]}
        assert by_bit[31]["fault_space_bits"] == words
        assert by_bit[31]["sdc_density"] == pytest.approx(1.0 / words)
        assert by_bit[3]["sdc_density"] == pytest.approx(0.5 / words)

    def test_density_is_json_ready_and_rendered(self, handmade_store):
        atlas = json.loads(json.dumps(build_atlas(handmade_store, baseline=1.0)))
        assert all("sdc_density" in row for row in atlas["layers"])
        text = format_atlas(atlas)
        assert "SDC density" in text
        assert f"{1.0 / (32 * 32):.2e}" in text

    def test_store_without_geometry_omits_densities(self, tmp_path):
        """Pre-PR-8 stores (no layer_words in identity) stay readable."""
        store_dir = tmp_path / "old"
        store = CampaignStore.for_campaign(store_dir, make_campaign())
        key = store.open_config(SPEC, tag="a")
        store.record(key, TrialOutcome(0, 0.5, 1), [(0, 31)])
        store.close()
        manifest_path = store_dir / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        from repro.store.store import _identity_hash

        for field in ("layer_words", "word_bits"):
            manifest["identity"].pop(field, None)
        manifest["config_hash"] = _identity_hash(manifest["identity"])
        manifest_path.write_text(json.dumps(manifest))
        store = CampaignStore.open(store_dir)
        try:
            atlas = build_atlas(store, baseline=1.0)
        finally:
            store.close()
        assert all("sdc_density" not in row for row in atlas["layers"])
        text = format_atlas(atlas)
        assert "SDC density" not in text
