"""Durability contract under replica batching: same store bytes.

``replicas`` is scheduling, not identity — a journal written by a
replica-batched campaign must match the per-trial journal record for
record (the trailing ``"sec"`` wall-time field is the one sanctioned
difference), resumes may switch the knob freely mid-campaign, shard
merges are width-agnostic, and the rendered atlas is byte-identical.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.loader import DataLoader
from repro.data.synthetic import SYNTH_MEAN, SYNTH_STD, SyntheticImageDataset
from repro.data.transforms import Normalize
from repro.eval.evaluator import Evaluator
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector
from repro.models.registry import build_model
from repro.quant import quantize_module
from repro.store import CampaignInterrupted, CampaignStore, build_atlas
from repro.store.encoding import exact_json_dumps

RATES = (1e-6, 5e-6)
SPEC = BitFlipFaultModel.at_rate(5e-6)


def make_campaign(replicas="off", workers=0, trials=8, shard=None):
    model = quantize_module(
        build_model("lenet", num_classes=10, scale=0.5, image_size=16, seed=0)
    )
    dataset = SyntheticImageDataset(
        num_classes=10, num_samples=128, image_size=16, seed=0, split="test"
    )
    evaluator = Evaluator(
        DataLoader(dataset, batch_size=64, transform=Normalize(SYNTH_MEAN, SYNTH_STD)),
        runtime=True,
    )
    return FaultCampaign(
        FaultInjector(model),
        evaluator.bind(model),
        trials=trials,
        seed=11,
        workers=workers,
        shard=shard,
        replicas=replicas,
    )


def _journal(store_dir):
    """Journal records with the sanctioned wall-time field stripped."""
    lines = (store_dir / "trials.jsonl").read_text().splitlines()
    return [
        {k: v for k, v in json.loads(line).items() if k != "sec"} for line in lines
    ]


def _atlas_bytes(path):
    store = CampaignStore.open(path)
    try:
        atlas = build_atlas(store, baseline=1.0, tolerance=0.01)
    finally:
        store.close()
    return exact_json_dumps(atlas, indent=2, sort_keys=True)


def _run_store(tmp_path, name, replicas, interrupt_at=None):
    store_dir = tmp_path / name
    with make_campaign(replicas=replicas) as campaign:
        with CampaignStore.for_campaign(store_dir, campaign) as store:
            if interrupt_at is not None:
                store.max_new_records = interrupt_at
                with pytest.raises(CampaignInterrupted):
                    campaign.run_sweep(RATES, tag="r", store=store)
                return store_dir
            campaign.run_sweep(RATES, tag="r", store=store)
    return store_dir


class TestReplicaStoreIdentity:
    def test_journal_and_atlas_bytes_match_per_trial_path(self, tmp_path):
        off = _run_store(tmp_path, "off", "off")
        on = _run_store(tmp_path, "on", 3)
        assert _journal(off) == _journal(on)
        assert _atlas_bytes(off) == _atlas_bytes(on)

    def test_interrupted_replica_run_resumes_to_identical_store(self, tmp_path):
        reference = _run_store(tmp_path, "straight", "off")
        resumed_dir = _run_store(tmp_path, "resumed", 4, interrupt_at=5)
        # Resume with the opposite knob: off-written prefix + replica
        # completion must still byte-match (scheduling never journals).
        with make_campaign(replicas=4) as campaign:
            with CampaignStore.for_campaign(resumed_dir, campaign) as store:
                campaign.run_sweep(RATES, tag="r", store=store)
                assert store.appended == len(RATES) * 8 - 5
        assert _journal(reference) == _journal(resumed_dir)
        assert _atlas_bytes(reference) == _atlas_bytes(resumed_dir)

    def test_cross_width_resume_is_not_an_identity_mismatch(self, tmp_path):
        """A store written with replicas off re-opens under auto."""
        store_dir = _run_store(tmp_path, "cross", "off", interrupt_at=3)
        with make_campaign(replicas="auto") as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                resumed = campaign.run_sweep(RATES, tag="r", store=store)
        straight = make_campaign(replicas="off")
        with straight:
            reference = straight.run_sweep(RATES, tag="r")
        for rate in RATES:
            np.testing.assert_array_equal(
                reference[rate].accuracies, resumed[rate].accuracies
            )

    def test_shard_merge_is_width_agnostic(self, tmp_path):
        with make_campaign(replicas="off") as campaign:
            reference = campaign.run_sweep(RATES, tag="s")

        shard_dirs = []
        for index in range(2):
            shard_dir = tmp_path / f"shard{index}"
            with make_campaign(replicas=3, shard=(index, 2)) as campaign:
                with CampaignStore.for_campaign(shard_dir, campaign) as store:
                    campaign.run_sweep(RATES, tag="s", store=store)
            shard_dirs.append(shard_dir)

        merged = CampaignStore.merge(tmp_path / "merged", shard_dirs)
        try:
            for rate, key in zip(RATES, merged.config_keys()):
                result = merged.result(key)
                np.testing.assert_array_equal(
                    reference[rate].accuracies, result.accuracies
                )
                np.testing.assert_array_equal(
                    reference[rate].flip_counts, result.flip_counts
                )
        finally:
            merged.close()

    def test_replica_groups_respect_the_journal_budget(self, tmp_path):
        """A group wider than the remaining budget must not evaluate
        (or journal) past it: pending work is truncated before grouping."""
        store_dir = tmp_path / "budget"
        with make_campaign(replicas=8) as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                store.max_new_records = 3
                with pytest.raises(CampaignInterrupted):
                    campaign.run(SPEC, tag="b", store=store)
                assert store.appended == 3
