"""The acceptance contract: interrupted + resumed == uninterrupted.

Trial seeds are schedule-independent and journaled floats round-trip
exactly, so a campaign resumed from its store must reproduce the
uninterrupted run bit for bit — per-trial accuracies, flip counts, and
the EarlyStop decision stream — on the serial and the pooled executor
alike; likewise a merge of shard stores must equal the unsharded run.
"""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import (
    BitFlipFaultModel,
    EarlyStop,
    FaultCampaign,
    FaultInjector,
)
from repro.quant import quantize_module
from repro.store import CampaignInterrupted, CampaignStore

RATES = (1e-3, 5e-3)
SPEC = BitFlipFaultModel.at_rate(5e-3)


def _model():
    return quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )


class _ParamHealth:
    def __init__(self, model):
        self.model = model

    def __call__(self) -> float:
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


class _CountingHealth(_ParamHealth):
    """Counts evaluations — proves replay never re-runs trials."""

    def __init__(self, model):
        super().__init__(model)
        self.calls = 0

    def __call__(self) -> float:
        self.calls += 1
        return super().__call__()


def make_campaign(workers=0, trials=8, seed=11, shard=None, counting=False):
    model = _model()
    evaluate = _CountingHealth(model) if counting else _ParamHealth(model)
    return FaultCampaign(
        FaultInjector(model),
        evaluate,
        trials=trials,
        seed=seed,
        workers=workers,
        shard=shard,
    )


def _journal_lines(store_dir):
    return (store_dir / "trials.jsonl").read_text().splitlines()


@pytest.mark.parametrize("workers", [0, 2])
class TestResumeDeterminism:
    def test_interrupted_then_resumed_is_bit_identical(self, tmp_path, workers):
        """The tentpole acceptance: same accuracies, same SDC stream."""
        straight = make_campaign(workers=0)
        with straight:
            reference = straight.run_sweep(RATES, tag="r")

        store_dir = tmp_path / "store"
        with make_campaign(workers=workers) as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                store.max_new_records = 5  # dies mid-way through rate 1
                with pytest.raises(CampaignInterrupted):
                    campaign.run_sweep(RATES, tag="r", store=store)

        with make_campaign(workers=workers) as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                resumed = campaign.run_sweep(RATES, tag="r", store=store)
                # Only the missing trials were executed and journaled.
                assert store.appended == len(RATES) * 8 - 5

        for rate in RATES:
            np.testing.assert_array_equal(
                reference[rate].accuracies, resumed[rate].accuracies
            )
            np.testing.assert_array_equal(
                reference[rate].flip_counts, resumed[rate].flip_counts
            )

    def test_resumed_store_equals_straight_store_byte_for_byte(
        self, tmp_path, workers
    ):
        """Journals (outcomes *and* site records) are identical too."""
        straight_dir = tmp_path / "straight"
        with make_campaign(workers=0) as campaign:
            with CampaignStore.for_campaign(straight_dir, campaign) as store:
                campaign.run_sweep(RATES, tag="r", store=store)

        resumed_dir = tmp_path / "resumed"
        with make_campaign(workers=workers) as campaign:
            with CampaignStore.for_campaign(resumed_dir, campaign) as store:
                store.max_new_records = 7
                with pytest.raises(CampaignInterrupted):
                    campaign.run_sweep(RATES, tag="r", store=store)
        with make_campaign(workers=workers) as campaign:
            with CampaignStore.for_campaign(resumed_dir, campaign) as store:
                campaign.run_sweep(RATES, tag="r", store=store)

        strip = lambda line: {  # noqa: E731 — timing is wall-clock, not identity
            k: v
            for k, v in __import__("json").loads(line).items()
            if k != "sec"
        }
        assert [strip(l) for l in _journal_lines(straight_dir)] == [
            strip(l) for l in _journal_lines(resumed_dir)
        ]

    def test_replay_runs_no_evaluations(self, tmp_path, workers):
        store_dir = tmp_path / "store"
        with make_campaign(workers=0) as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                reference = campaign.run(SPEC, tag="t", store=store)

        replayer = make_campaign(workers=workers, counting=True)
        with replayer:
            with CampaignStore.for_campaign(store_dir, replayer) as store:
                replayed = replayer.run(SPEC, tag="t", store=store)
        assert replayer.evaluate.calls == 0
        np.testing.assert_array_equal(reference.accuracies, replayed.accuracies)


@pytest.mark.parametrize("workers", [0, 2])
def test_two_way_shard_merge_equals_unsharded(tmp_path, workers):
    with make_campaign(workers=0) as campaign:
        reference = campaign.run_sweep(RATES, tag="s")

    shard_dirs = []
    for index in range(2):
        shard_dir = tmp_path / f"shard{index}"
        with make_campaign(workers=workers, shard=(index, 2)) as campaign:
            with CampaignStore.for_campaign(shard_dir, campaign) as store:
                campaign.run_sweep(RATES, tag="s", store=store)
        shard_dirs.append(shard_dir)

    merged = CampaignStore.merge(tmp_path / "merged", shard_dirs)
    try:
        for rate, key in zip(RATES, merged.config_keys()):
            result = merged.result(key)
            np.testing.assert_array_equal(
                reference[rate].accuracies, result.accuracies
            )
            np.testing.assert_array_equal(
                reference[rate].flip_counts, result.flip_counts
            )
    finally:
        merged.close()


class TestBudget:
    def test_budget_never_evaluates_over_limit_trials(self, tmp_path):
        """--limit N means exactly N evaluations, not N+1: the campaign
        truncates dispatched work to the remaining budget and raises
        before the first un-journalable evaluation."""
        campaign = make_campaign(counting=True)
        with campaign:
            with CampaignStore.for_campaign(tmp_path / "s", campaign) as store:
                store.max_new_records = 2
                with pytest.raises(CampaignInterrupted):
                    campaign.run(SPEC, tag="b", store=store)
        assert campaign.evaluate.calls == 2
        assert store.appended == 2

    def test_sweep_killed_between_rates_is_not_reported_complete(
        self, tmp_path
    ):
        """run_sweep registers every rate's config up front, so a store
        interrupted after rate 1 still shows rate 2 as missing work."""
        campaign = make_campaign()
        with campaign:
            with CampaignStore.for_campaign(tmp_path / "s", campaign) as store:
                store.max_new_records = 8  # exactly rate 1's trials
                with pytest.raises(CampaignInterrupted):
                    campaign.run_sweep(RATES, tag="k", store=store)
                status = store.status()
                assert len(status["configs"]) == len(RATES)
                assert status["journaled"] == 8
                assert status["expected"] == 8 * len(RATES)
                assert not status["complete"]


class TestEarlyStopConvergence:
    STOP = EarlyStop(ci_halfwidth=1.0, min_trials=2)

    def test_convergence_is_recorded_in_the_manifest(self, tmp_path):
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(tmp_path / "s", campaign) as store:
                result = campaign.run(SPEC, tag="es", store=store, early_stop=self.STOP)
                (key,) = store.config_keys()
                assert store.converged_at(key) == result.trials == 2

    def test_resume_does_not_reopen_a_converged_config(self, tmp_path):
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(tmp_path / "s", campaign) as store:
                reference = campaign.run(
                    SPEC, tag="es", store=store, early_stop=self.STOP
                )
        # Resume-by-rerun *without* early_stop: the manifest's converged
        # marker still short-circuits — no evaluation happens at all.
        resumer = make_campaign(counting=True)
        with resumer:
            with CampaignStore.for_campaign(tmp_path / "s", resumer) as store:
                replayed = resumer.run(SPEC, tag="es", store=store)
        assert resumer.evaluate.calls == 0
        assert replayed.trials == reference.trials
        np.testing.assert_array_equal(reference.accuracies, replayed.accuracies)

    def test_convergence_reached_during_replay_is_marked(self, tmp_path):
        """Crash after journaling but before convergence: the resumed run
        makes the same EarlyStop decision at the same trial."""
        with make_campaign() as campaign:
            reference = campaign.run(SPEC, tag="es", early_stop=self.STOP)

        store_dir = tmp_path / "s"
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                store.max_new_records = 1  # crash before min_trials
                with pytest.raises(CampaignInterrupted):
                    campaign.run(SPEC, tag="es", store=store, early_stop=self.STOP)
                assert store.converged_at(store.config_keys()[0]) is None
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(store_dir, campaign) as store:
                resumed = campaign.run(
                    SPEC, tag="es", store=store, early_stop=self.STOP
                )
                assert store.converged_at(store.config_keys()[0]) == reference.trials
        np.testing.assert_array_equal(reference.accuracies, resumed.accuracies)

    def test_early_stop_refuses_sharded_campaigns(self, tmp_path):
        with make_campaign(shard=(0, 2)) as campaign:
            with pytest.raises(ConfigurationError, match="shard"):
                campaign.run(SPEC, early_stop=self.STOP)
