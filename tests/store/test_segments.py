"""Per-worker journal segments: fold, dedup, conflict audit, scanning.

PR 10's coordination layer gives every joining worker its own append
file (``trials.<worker>.jsonl``) so the shared journal keeps the PR 5
single-writer crash-safety argument *per file*.  Loading a store folds
the main journal plus every segment; equal records journaled twice
across files (the benign steal race) dedup, unequal ones are corruption
and must refuse to load.
"""

import json

import pytest

from repro.store import CampaignStore, StoreError
from tests.store.test_resume import RATES, make_campaign


def _fault_model(rate=None):
    from repro.fault import BitFlipFaultModel

    return BitFlipFaultModel.at_rate(RATES[0] if rate is None else rate)


def _make_store(path, campaign):
    with CampaignStore.for_campaign(path, campaign) as store:
        return store.register_configs([_fault_model()])[0]


def _journal_into(path, campaign, segment, indices, key, seed_campaign=None):
    """Evaluate ``indices`` and journal them via one segment writer."""
    source = seed_campaign or campaign
    with CampaignStore.open(path, segment=segment) as store:
        store.attach(campaign)
        for outcome, sites in source.iter_range(_fault_model(), list(indices)):
            store.record(key, outcome, sites)


class TestSegmentWriters:
    def test_segment_writer_appends_to_its_own_file(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(3), key)
        assert len((tmp_path / "trials.alpha.jsonl").read_text().splitlines()) == 3
        # The creation-time main journal stays untouched.
        assert (tmp_path / "trials.jsonl").read_bytes() == b""

    def test_invalid_segment_name_rejected(self, tmp_path):
        with make_campaign() as campaign:
            _make_store(tmp_path, campaign)
        for segment in ("", "a/b", "a.b", "a b"):
            with pytest.raises(StoreError, match="invalid segment name"):
                CampaignStore.open(tmp_path, segment=segment)

    def test_segment_property_exposed(self, tmp_path):
        with make_campaign() as campaign:
            _make_store(tmp_path, campaign)
        with CampaignStore.open(tmp_path, segment="alpha") as store:
            assert store.segment == "alpha"
        with CampaignStore.open(tmp_path) as store:
            assert store.segment is None


class TestFolding:
    def test_fold_equals_single_writer_run(self, tmp_path):
        straight_dir = tmp_path / "straight"
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(straight_dir, campaign) as store:
                campaign.run(_fault_model(), store=store)
            reference = CampaignStore.open(straight_dir)
            try:
                key = reference.config_keys()[0]
                expected = reference.records(key)
            finally:
                reference.close()

        split_dir = tmp_path / "split"
        with make_campaign() as campaign:
            key = _make_store(split_dir, campaign)
            _journal_into(split_dir, campaign, "alpha", range(0, 5), key)
            _journal_into(split_dir, campaign, "beta", range(5, 8), key)
        with CampaignStore.open(split_dir) as folded:
            assert folded.records(key) == expected
            assert folded.complete(key)

    def test_equal_cross_file_duplicates_dedup(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 4), key)
            _journal_into(tmp_path, campaign, "beta", range(4, 8), key)
        # The benign steal race: beta's file also carries alpha's trial
        # 3, byte for byte (determinism makes re-evaluations equal).
        line = (tmp_path / "trials.alpha.jsonl").read_text().splitlines()[3]
        with open(tmp_path / "trials.beta.jsonl", "a", encoding="utf-8") as f:
            f.write(line + "\n")
        with CampaignStore.open(tmp_path) as store:
            assert sorted(store.records(key)) == list(range(8))

    def test_conflicting_cross_file_duplicate_refuses_to_load(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 2), key)
        raw = json.loads(
            (tmp_path / "trials.alpha.jsonl").read_text().splitlines()[1]
        )
        raw["a"] = 0.12345  # same trial index, different accuracy
        with open(tmp_path / "trials.beta.jsonl", "w", encoding="utf-8") as f:
            f.write(json.dumps(raw) + "\n")
        with pytest.raises(StoreError, match="conflict"):
            CampaignStore.open(tmp_path)

    def test_wall_clock_field_never_makes_a_conflict(self, tmp_path):
        """``sec`` is non-identity: re-evaluated trials differ only there."""
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 2), key)
        raw = json.loads(
            (tmp_path / "trials.alpha.jsonl").read_text().splitlines()[1]
        )
        raw["sec"] = raw["sec"] + 42.0
        with open(tmp_path / "trials.beta.jsonl", "w", encoding="utf-8") as f:
            f.write(json.dumps(raw) + "\n")
        with CampaignStore.open(tmp_path) as store:
            assert sorted(store.records(key)) == [0, 1]

    def test_same_file_duplicate_is_still_corruption(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", [0], key)
        segment = tmp_path / "trials.alpha.jsonl"
        line = segment.read_text().splitlines()[0]
        with open(segment, "a", encoding="utf-8") as f:
            f.write(line + "\n")
        with pytest.raises(StoreError, match="duplicate"):
            CampaignStore.open(tmp_path)

    def test_foreign_torn_tail_is_tolerated(self, tmp_path):
        """A peer killed mid-append must not block other readers."""
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 3), key)
        with open(tmp_path / "trials.beta.jsonl", "w", encoding="utf-8") as f:
            f.write('{"c": "' + key + '", "t": 5, "a"')  # torn mid-record
        with CampaignStore.open(tmp_path) as store:
            assert sorted(store.records(key)) == [0, 1, 2]


class TestScanProgress:
    def test_counts_indices_and_attributes_writers(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 5), key)
            _journal_into(tmp_path, campaign, "beta", range(5, 7), key)
        progress = CampaignStore.scan_progress(tmp_path)
        assert progress.journaled(key) == set(range(7))
        assert progress.segments == {"": 0, "alpha": 5, "beta": 2}
        assert progress.journaled("no-such-config") == set()

    def test_main_journal_counts_under_empty_writer_name(self, tmp_path):
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(tmp_path, campaign) as store:
                campaign.run(_fault_model(), store=store)
        progress = CampaignStore.scan_progress(tmp_path)
        assert progress.segments[""] == 8

    def test_skips_unparseable_lines_without_failing(self, tmp_path):
        with make_campaign() as campaign:
            key = _make_store(tmp_path, campaign)
            _journal_into(tmp_path, campaign, "alpha", range(0, 2), key)
        with open(tmp_path / "trials.beta.jsonl", "w", encoding="utf-8") as f:
            f.write("garbage\n")
        progress = CampaignStore.scan_progress(tmp_path)
        assert progress.segments == {"": 0, "alpha": 2, "beta": 0}
        assert progress.journaled(key) == {0, 1}

    def test_non_store_directory_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="not a campaign store"):
            CampaignStore.scan_progress(tmp_path / "nope")


class TestRegisterConfigs:
    def test_batch_registration_is_one_manifest_write_and_idempotent(
        self, tmp_path
    ):
        from repro.fault import BitFlipFaultModel

        models = [BitFlipFaultModel.at_rate(rate) for rate in RATES]
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(tmp_path, campaign) as store:
                keys = store.register_configs(models)
                assert keys == store.config_keys()
                assert store.register_configs(models) == keys  # idempotent
        with make_campaign() as campaign:
            with CampaignStore.for_campaign(tmp_path, campaign) as store:
                assert store.config_keys() == keys  # persisted
