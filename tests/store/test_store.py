"""The campaign store: format, durability, identity, budget, merge."""

import json
import os

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.fault import BitFlipFaultModel, FaultCampaign, FaultInjector, TrialOutcome
from repro.quant import quantize_module
from repro.store import (
    CampaignInterrupted,
    CampaignStore,
    StoredFaultModel,
    StoreError,
)


def _model():
    return quantize_module(
        nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
    )


class _ParamHealth:
    """Picklable accuracy proxy (deterministic in the fault pattern)."""

    def __init__(self, model):
        self.model = model

    def __call__(self) -> float:
        total, bad = 0, 0
        for param in self.model.parameters():
            total += param.size
            bad += int((np.abs(param.data) > 100).sum())
        return 1.0 - bad / total


def make_campaign(workers=0, trials=6, seed=0, shard=None):
    model = _model()
    injector = FaultInjector(model)
    return FaultCampaign(
        injector,
        _ParamHealth(model),
        trials=trials,
        seed=seed,
        workers=workers,
        shard=shard,
    )


SPEC = BitFlipFaultModel.at_rate(5e-3)


class TestCreateOpen:
    def test_create_writes_manifest_and_empty_journal(self, tmp_path):
        store = CampaignStore.for_campaign(
            tmp_path / "s", make_campaign(), meta={"note": "hi"}
        )
        assert (tmp_path / "s" / "manifest.json").exists()
        assert (tmp_path / "s" / "trials.jsonl").exists()
        assert store.trials == 6
        assert store.seed == 0
        assert store.shard is None
        assert store.meta == {"note": "hi"}
        assert store.layers  # the injector's parameter names
        assert store.identity["fingerprint"].startswith("sha256:")

    def test_open_missing_store_is_error(self, tmp_path):
        with pytest.raises(StoreError):
            CampaignStore.open(tmp_path / "nope")

    def test_reopen_preserves_exact_floats(self, tmp_path):
        campaign = make_campaign()
        store = CampaignStore.for_campaign(tmp_path / "s", campaign)
        key = store.open_config(SPEC, tag="t")
        accuracy = 1.0 / 3.0  # not exactly representable in decimal
        store.record(key, TrialOutcome(0, accuracy, 2, seconds=0.5), [(0, 3)])
        store.close()
        reopened = CampaignStore.open(tmp_path / "s")
        outcome = reopened.journaled(key)[0]
        assert outcome.accuracy == accuracy  # bit-identical float64
        assert outcome.flips == 2
        record = reopened.records(key)[0]
        assert record.sites == ((0, 3),)
        assert record.seconds == 0.5

    def test_for_campaign_rejects_mismatched_identity(self, tmp_path):
        CampaignStore.for_campaign(tmp_path / "s", make_campaign(seed=0)).close()
        with pytest.raises(StoreError, match="seed"):
            CampaignStore.for_campaign(tmp_path / "s", make_campaign(seed=1))
        with pytest.raises(StoreError, match="trials"):
            CampaignStore.for_campaign(tmp_path / "s", make_campaign(trials=9))
        with pytest.raises(StoreError, match="shard"):
            CampaignStore.for_campaign(
                tmp_path / "s", make_campaign(shard=(0, 2))
            )

    def test_edited_manifest_fails_config_hash(self, tmp_path):
        CampaignStore.for_campaign(tmp_path / "s", make_campaign()).close()
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["identity"]["seed"] = 99  # tamper without re-hashing
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="config hash"):
            CampaignStore.open(tmp_path / "s")


class TestJournalDurability:
    def _store_with_records(self, tmp_path, count=3):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
        key = store.open_config(SPEC, tag="t")
        for index in range(count):
            store.record(
                key, TrialOutcome(index, 0.5 + index / 10, index), [(0, index)]
            )
        store.close()
        return key

    def test_torn_trailing_record_is_ignored_and_truncated(self, tmp_path):
        key = self._store_with_records(tmp_path)
        journal = tmp_path / "s" / "trials.jsonl"
        intact = journal.read_bytes()
        journal.write_bytes(intact + b'{"c":"t::rate=0.005","t":3,"a":0.9')
        reopened = CampaignStore.open(tmp_path / "s")
        assert sorted(reopened.journaled(key)) == [0, 1, 2]
        # The next append reclaims the torn tail first.
        reopened.record(key, TrialOutcome(3, 0.9, 1), [])
        reopened.close()
        final = CampaignStore.open(tmp_path / "s")
        assert sorted(final.journaled(key)) == [0, 1, 2, 3]

    def test_corrupt_mid_journal_is_an_error(self, tmp_path):
        self._store_with_records(tmp_path)
        journal = tmp_path / "s" / "trials.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"garbage": true}\n'
        journal.write_bytes(b"".join(lines))
        with pytest.raises(StoreError, match="line 2"):
            CampaignStore.open(tmp_path / "s")

    def test_duplicate_record_rejected(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
        key = store.open_config(SPEC)
        store.record(key, TrialOutcome(0, 0.5, 1), [])
        with pytest.raises(ConfigurationError, match="already journaled"):
            store.record(key, TrialOutcome(0, 0.5, 1), [])

    def test_unknown_config_rejected(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
        with pytest.raises(StoreError, match="no config"):
            store.record("nope", TrialOutcome(0, 0.5, 1), [])


class TestBudget:
    def test_budget_interrupts_before_the_over_limit_trial(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign())
        key = store.open_config(SPEC)
        store.max_new_records = 2
        store.record(key, TrialOutcome(0, 0.5, 1), [])
        store.record(key, TrialOutcome(1, 0.5, 1), [])
        with pytest.raises(CampaignInterrupted):
            store.record(key, TrialOutcome(2, 0.5, 1), [])
        assert sorted(store.journaled(key)) == [0, 1]


class TestCompleteness:
    def test_result_requires_a_complete_config(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign(trials=3))
        key = store.open_config(SPEC)
        store.record(key, TrialOutcome(0, 0.25, 1), [])
        assert store.missing_indices(key) == [1, 2]
        with pytest.raises(StoreError, match="incomplete"):
            store.result(key)
        store.record(key, TrialOutcome(1, 0.5, 2), [])
        store.record(key, TrialOutcome(2, 0.75, 3), [])
        result = store.result(key)
        np.testing.assert_array_equal(result.accuracies, [0.25, 0.5, 0.75])
        np.testing.assert_array_equal(result.flip_counts, [1, 2, 3])
        assert isinstance(result.fault_model, StoredFaultModel)
        assert result.fault_model.describe() == SPEC.describe()

    def test_shard_store_expects_only_its_slice(self, tmp_path):
        store = CampaignStore.for_campaign(
            tmp_path / "s", make_campaign(trials=5, shard=(1, 2))
        )
        key = store.open_config(SPEC)
        assert store.expected_indices(key) == [1, 3]

    def test_status_counts(self, tmp_path):
        store = CampaignStore.for_campaign(tmp_path / "s", make_campaign(trials=2))
        key = store.open_config(SPEC, tag="x")
        store.record(key, TrialOutcome(0, 0.5, 1, seconds=2.0), [])
        status = store.status()
        assert status["journaled"] == 1
        assert status["expected"] == 2
        assert not status["complete"]
        assert status["mean_trial_seconds"] == 2.0
        (config,) = status["configs"]
        assert config["tag"] == "x"
        assert config["journaled"] == 1


class TestMerge:
    def test_merge_rejects_foreign_stores(self, tmp_path):
        CampaignStore.for_campaign(tmp_path / "a", make_campaign(seed=0)).close()
        CampaignStore.for_campaign(tmp_path / "b", make_campaign(seed=1)).close()
        with pytest.raises(StoreError, match="identity"):
            CampaignStore.merge(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])

    def test_merge_detects_conflicting_duplicates(self, tmp_path):
        for name, accuracy in (("a", 0.5), ("b", 0.75)):
            store = CampaignStore.for_campaign(tmp_path / name, make_campaign())
            key = store.open_config(SPEC)
            store.record(key, TrialOutcome(0, accuracy, 1), [])
            store.close()
        with pytest.raises(StoreError, match="conflicting"):
            CampaignStore.merge(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])

    def test_merge_deduplicates_identical_records(self, tmp_path):
        # seconds differ (wall-clock always does between hosts); the
        # record identity is accuracy/flips/sites, so this deduplicates
        # rather than reporting a bogus conflict.
        for name, seconds in (("a", 1.0), ("b", 2.5)):
            store = CampaignStore.for_campaign(tmp_path / name, make_campaign())
            key = store.open_config(SPEC)
            store.record(key, TrialOutcome(0, 0.5, 1, seconds=seconds), [(0, 2)])
            store.close()
        merged = CampaignStore.merge(tmp_path / "m", [tmp_path / "a", tmp_path / "b"])
        assert sorted(merged.journaled(key)) == [0]
        merged.close()

    def test_merged_store_is_unsharded(self, tmp_path):
        stores = []
        for index in range(2):
            campaign = make_campaign(trials=4, shard=(index, 2))
            store = CampaignStore.for_campaign(tmp_path / f"s{index}", campaign)
            key = store.open_config(SPEC)
            for trial in campaign.trial_plan():
                store.record(key, TrialOutcome(trial, trial / 10, trial), [])
            store.close()
            stores.append(tmp_path / f"s{index}")
        merged = CampaignStore.merge(tmp_path / "m", stores)
        assert merged.shard is None
        assert merged.complete(key)
        np.testing.assert_array_equal(
            merged.result(key).accuracies, [0.0, 0.1, 0.2, 0.3]
        )
        merged.close()

    def test_merge_needs_sources(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignStore.merge(tmp_path / "m", [])

    def test_merge_killed_mid_records_leaves_an_openable_store(
        self, tmp_path, monkeypatch
    ):
        """The config table is persisted before any record is journaled,
        so a crash mid-merge leaves a valid (incomplete) store — never a
        journal referencing configs the manifest doesn't know."""
        sources = []
        for index in range(2):
            campaign = make_campaign(trials=4, shard=(index, 2))
            store = CampaignStore.for_campaign(tmp_path / f"s{index}", campaign)
            key = store.open_config(SPEC)
            for trial in campaign.trial_plan():
                store.record(key, TrialOutcome(trial, trial / 10, 1), [])
            store.close()
            sources.append(tmp_path / f"s{index}")

        original = CampaignStore._append
        appended = []

        def exploding(self, append_key, record):
            if appended:
                raise RuntimeError("simulated crash mid-merge")
            appended.append(record)
            original(self, append_key, record)

        with monkeypatch.context() as patch:
            patch.setattr(CampaignStore, "_append", exploding)
            with pytest.raises(RuntimeError, match="mid-merge"):
                CampaignStore.merge(tmp_path / "m", sources)

        survivor = CampaignStore.open(tmp_path / "m")
        assert survivor.config_keys() == [key]
        assert not survivor.complete(key)
        assert len(survivor.missing_indices(key)) == 3
        survivor.close()


class TestShardValidation:
    def test_bad_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            make_campaign(shard=(2, 2))
        with pytest.raises(ConfigurationError):
            make_campaign(shard=(-1, 2))
        with pytest.raises(ConfigurationError):
            make_campaign(shard=(0, 0))
        with pytest.raises(ConfigurationError):
            make_campaign(shard="1/2")

    def test_trial_plan_partitions_exactly(self):
        plans = [make_campaign(trials=7, shard=(i, 3)).trial_plan() for i in range(3)]
        combined = sorted(t for plan in plans for t in plan)
        assert combined == list(range(7))
        assert make_campaign(trials=7).trial_plan() == list(range(7))
