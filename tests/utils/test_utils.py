"""Shared utilities: seeded RNG derivation, timing, serialization, logging."""

import logging
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    Timer,
    derive_seed,
    get_logger,
    load_state,
    new_rng,
    save_state,
    set_verbosity,
    spawn_rngs,
    time_callable,
)


class TestNewRng:
    def test_passes_generators_through(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_int_seed_deterministic(self):
        a = new_rng(42).integers(0, 1 << 30, size=8)
        b = new_rng(42).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_entropy(self):
        a = new_rng(None).integers(0, 1 << 62)
        b = new_rng(None).integers(0, 1 << 62)
        assert a != b  # astronomically unlikely to collide


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(0, "fault", 3) == derive_seed(0, "fault", 3)

    def test_sensitive_to_every_component(self):
        base = derive_seed(7, "a", 1)
        assert base != derive_seed(8, "a", 1)
        assert base != derive_seed(7, "b", 1)
        assert base != derive_seed(7, "a", 2)

    def test_known_range(self):
        seed = derive_seed(0, "anything")
        assert 0 <= seed < 2**63 - 1

    def test_string_int_distinction(self):
        """repr-based hashing must not conflate 1 and "1"."""
        assert derive_seed(0, 1) != derive_seed(0, "1")

    @given(
        base=st.integers(min_value=0, max_value=2**31),
        label=st.text(max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_valid_numpy_seed(self, base, label):
        seed = derive_seed(base, label)
        new_rng(seed)  # must not raise


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(0, 4, label="workers")
        assert len(rngs) == 4
        draws = [rng.integers(0, 1 << 62) for rng in rngs]
        assert len(set(draws)) == 4

    def test_reproducible(self):
        a = [rng.integers(0, 1 << 30) for rng in spawn_rngs(1, 3)]
        b = [rng.integers(0, 1 << 30) for rng in spawn_rngs(1, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                time.sleep(0.001)
        assert len(timer.laps) == 3
        assert timer.elapsed >= 0.003
        assert timer.mean == pytest.approx(timer.elapsed / 3)

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []
        assert timer.mean == 0.0

    def test_exit_without_enter(self):
        with pytest.raises(RuntimeError):
            Timer().__exit__(None, None, None)

    def test_reentry_raises_and_leaves_timer_usable(self):
        timer = Timer()
        with pytest.raises(RuntimeError, match="re-entered"):
            with timer:
                with timer:
                    pass
        # The failed inner enter must not corrupt the open lap: exiting
        # the outer ``with`` already recorded it.
        assert len(timer.laps) == 1
        with timer:
            pass
        assert len(timer.laps) == 2

    def test_mean_on_empty_is_zero(self):
        assert Timer().mean == 0.0

    def test_exit_clears_start_for_next_lap(self):
        timer = Timer()
        with timer:
            pass
        assert timer._start is None

    def test_survives_exceptions(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer:
                raise ValueError("boom")
        assert len(timer.laps) == 1


class TestTimeCallable:
    def test_statistics_shape(self):
        stats = time_callable(lambda: sum(range(100)), repeats=4, warmup=1)
        assert set(stats) == {"mean", "min", "max", "total"}
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["total"] == pytest.approx(stats["mean"] * 4)

    def test_warmup_not_counted(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        state = {
            "layer.weight": np.arange(6, dtype=np.float32).reshape(2, 3),
            "layer.bias": np.array([1.5], dtype=np.float64),
            "bn.running_mean": np.zeros(4),
        }
        path = tmp_path / "state.npz"
        save_state(path, state)
        loaded = load_state(path)
        assert set(loaded) == set(state)
        for name, value in state.items():
            np.testing.assert_array_equal(loaded[name], value)
            assert loaded[name].dtype == value.dtype

    def test_extension_appended(self, tmp_path):
        path = tmp_path / "bare"
        save_state(path, {"x": np.ones(2)})
        loaded = load_state(tmp_path / "bare")  # no .npz in the request
        np.testing.assert_array_equal(loaded["x"], np.ones(2))

    def test_non_string_keys_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_state(tmp_path / "bad.npz", {3: np.ones(1)})

    def test_loaded_arrays_are_copies(self, tmp_path):
        path = tmp_path / "state.npz"
        save_state(path, {"x": np.zeros(3)})
        loaded = load_state(path)
        loaded["x"][0] = 99.0  # must not raise (writable copy)


class TestLogging:
    def test_namespaced_loggers(self):
        assert get_logger().name == "repro"
        assert get_logger("fault.campaign").name == "repro.fault.campaign"

    def test_set_verbosity(self):
        set_verbosity("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING

    def test_single_handler_despite_repeat_calls(self):
        for _ in range(3):
            get_logger("x")
        assert len(logging.getLogger("repro").handlers) == 1
